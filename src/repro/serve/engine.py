"""The worker supervisor: spawn, watch, requeue, escalate.

:class:`WorkerSupervisor` owns N worker processes (each running
:func:`repro.serve.worker.worker_loop`) plus one monitor thread that
closes the engine's reliability loop:

* **crash recovery** — a running job whose worker process is dead is
  requeued (``worker_lost``); the next attempt resumes from the job's
  last per-stage checkpoint.  Retries are bounded by the job's
  ``max_retries``; exhaustion turns the job ``failed``.
* **stall detection** — a running job whose heartbeat is older than
  ``stale_timeout`` while its worker is still alive gets the worker
  killed and the job requeued (``stalled``).
* **per-job wall timeout** — ``options.timeout`` seconds after
  ``started``, the worker is killed and the job requeued
  (``timeout``).
* **cancel escalation** — a ``cancel_requested`` job normally winds
  down cooperatively (the worker's beat thread raises
  :class:`~repro.serve.worker.JobCancelled`); if it is still running
  after ``cancel_grace`` seconds the supervisor sends ``SIGUSR1``
  itself, and after another grace period it SIGKILLs the worker and
  marks the job cancelled.
* **worker replacement** — dead workers are respawned so capacity is
  constant.

On startup, jobs left ``running`` by a previous server process are
requeued with the attempt refunded (``orphaned``).  On close, workers
get ``SIGTERM`` (they requeue their active job with the attempt
refunded), then ``SIGKILL`` after a grace period.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import threading
import time
from dataclasses import asdict, dataclass, field

from repro.obs import get_logger
from repro.serve.store import JobStore, JobStoreError
from repro.serve.worker import worker_loop

_log = get_logger("serve.engine")


@dataclass
class ServeSettings:
    """Tunables of the job engine (server + supervisor + workers)."""

    #: Worker processes draining the queue.
    workers: int = 2
    #: Idle claim-poll interval inside each worker, seconds.
    poll_interval: float = 0.1
    #: Heartbeat cadence of a worker's beat thread, seconds.
    heartbeat_interval: float = 0.5
    #: A running job is considered lost/stalled past this many seconds
    #: without a heartbeat.
    stale_timeout: float = 15.0
    #: Seconds to wait for cooperative cancel before escalating.
    cancel_grace: float = 5.0
    #: Monitor-thread poll cadence, seconds.
    monitor_interval: float = 0.25
    #: Default per-job flow worker count (jobs may override; always
    #: pinned, so REPRO_WORKERS never multiplies across jobs).
    default_job_workers: int = 1
    #: Optional run-registry directory: every completed job also lands
    #: in ``repro runs`` history.
    runs_dir: str | None = None
    #: Default max_retries for submissions that do not specify one.
    default_max_retries: int = 2
    #: Admission control: new submits are refused (503 + Retry-After)
    #: once this many jobs are queued.  ``/readyz`` reports not-ready
    #: at 80% of this (the high-watermark), so load balancers back off
    #: before the hard refusal kicks in.
    max_queue_depth: int = 10_000
    #: Per-client submit rate, requests/second (token bucket; 0 = off).
    rate_limit: float = 0.0
    #: Token-bucket burst for the rate limiter (0 = twice the rate).
    rate_burst: float = 0.0
    #: Default seconds :meth:`WorkerSupervisor.drain` waits for
    #: in-flight jobs before leaving them to checkpoint-requeue.
    drain_timeout: float = 30.0

    def worker_settings(self, parent_pid: int) -> dict:
        out = asdict(self)
        out["parent_pid"] = parent_pid
        return out


def _alive(pid: int | None) -> bool:
    """Whether ``pid`` names a live process we may signal."""
    if not pid:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


@dataclass
class _CancelWatch:
    first_seen: float
    nudged: bool = False


class WorkerSupervisor:
    """N queue-draining worker processes plus the reliability monitor."""

    def __init__(self, root, settings: ServeSettings | None = None):
        self.root = str(root)
        self.settings = settings or ServeSettings()
        self.store = JobStore(self.root)
        methods = mp.get_all_start_methods()
        self._ctx = mp.get_context("fork" if "fork" in methods else "spawn")
        self._procs: list = []
        self._monitor: threading.Thread | None = None
        self._stop = threading.Event()
        self._cancels: dict[str, _CancelWatch] = {}
        self._started = False
        self._closed = False
        self._draining = False
        #: Requeues/respawns performed, for bench/health reporting.
        self.requeues = 0
        self.respawns = 0

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._draining = False
        try:
            # A previous process may have died mid-drain; a fresh
            # supervisor serves.
            self.store.set_draining(False)
        except JobStoreError as exc:
            _log.warning("could not clear drain flag on start: %s", exc)
        for record in self.store.running():
            # Leftovers from a previous server process: their workers
            # are gone (or never ours); give the jobs back to the queue
            # without burning a retry.
            self.store.requeue(
                record["job_id"], "orphaned", count_attempt=False
            )
            self.requeues += 1
        for w in range(self.settings.workers):
            self._procs.append(self._spawn(w))
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="serve-monitor", daemon=True
        )
        self._monitor.start()
        _log.info(
            "supervisor up: %d workers on %s", len(self._procs), self.root
        )

    def _spawn(self, worker_id: int):
        proc = self._ctx.Process(
            target=worker_loop,
            args=(
                self.root,
                worker_id,
                self.settings.worker_settings(os.getpid()),
            ),
            name=f"repro-serve-{worker_id}",
            daemon=False,  # workers spawn their own WorkerPool children
        )
        proc.start()
        return proc

    def close(self, *, grace: float = 5.0) -> None:
        """Stop the monitor and wind every worker down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=2.0)
        for proc in self._procs:
            if proc.is_alive():
                try:
                    os.kill(proc.pid, signal.SIGTERM)
                except (ProcessLookupError, OSError):
                    pass
        deadline = time.monotonic() + grace
        for proc in self._procs:
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)
        # Anything still marked running belonged to a worker we just
        # killed; refund the attempt and give it back to the queue.
        for record in self.store.running():
            self.store.requeue(
                record["job_id"], "shutdown", count_attempt=False
            )
            self.requeues += 1
        self._procs = []

    def drain(self, timeout: float | None = None) -> dict:
        """Graceful drain: stop claiming, wait for in-flight jobs.

        Raises the store's drain flag — workers stop claiming (the flag
        lives in the database, so it reaches every worker *process*)
        and the server starts refusing new submits with 503 — then
        waits up to ``timeout`` seconds for running jobs to finish.
        Jobs still in flight at the deadline are not killed here:
        :meth:`close` SIGTERMs their workers, which checkpoint and
        requeue them with the attempt refunded, so a restarted engine
        resumes them bit-identically.  Idempotent; returns a summary.
        """
        if timeout is None:
            timeout = self.settings.drain_timeout
        self._draining = True
        try:
            self.store.set_draining(True)
        except JobStoreError as exc:
            # Workers will not see the flag, but the in-process server
            # still refuses submits via the ``draining`` property.
            _log.warning("drain: could not raise store flag: %s", exc)
        deadline = time.monotonic() + max(0.0, float(timeout))
        while time.monotonic() < deadline:
            if not self.store.running():
                break
            time.sleep(min(0.1, self.settings.monitor_interval))
        in_flight = len(self.store.running())
        _log.info(
            "drain finished: %d jobs still in flight (timeout %.1fs)",
            in_flight, float(timeout),
        )
        return {
            "draining": True,
            "timeout": float(timeout),
            "in_flight": in_flight,
            "drained": in_flight == 0,
        }

    @property
    def draining(self) -> bool:
        """Whether a drain was requested (here or by another process)."""
        if self._draining:
            return True
        try:
            return self.store.draining()
        except JobStoreError:
            return False

    def __enter__(self) -> "WorkerSupervisor":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- introspection -------------------------------------------------
    def worker_pids(self) -> list[int]:
        return [p.pid for p in self._procs if p.is_alive()]

    def describe(self) -> dict:
        return {
            "workers": [
                {"pid": p.pid, "alive": p.is_alive(), "name": p.name}
                for p in self._procs
            ],
            "requeues": self.requeues,
            "respawns": self.respawns,
            "draining": self._draining,
        }

    # -- the reliability loop ------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.settings.monitor_interval):
            try:
                self.poll()
            except Exception as exc:  # monitor must never die
                _log.warning(
                    "supervisor poll error (%s: %s)", type(exc).__name__, exc
                )

    def poll(self, *, now: float | None = None) -> None:
        """One reliability sweep (called by the monitor thread)."""
        now = time.time() if now is None else float(now)
        self._respawn_dead_workers()
        live = set(self.worker_pids())
        for record in self.store.running():
            job_id = record["job_id"]
            pid = record.get("worker")
            options = record.get("options") or {}
            if record.get("cancel_requested"):
                self._escalate_cancel(record, live, now)
                continue
            if pid not in live and not _alive(pid):
                self._requeue(job_id, "worker_lost", pid=pid)
                continue
            timeout = options.get("timeout")
            started = record.get("started") or now
            if timeout and now - started > float(timeout):
                self._kill_worker(pid)
                self._requeue(
                    job_id, "timeout",
                    pid=pid, detail={"elapsed_s": round(now - started, 3)},
                )
                continue
            heartbeat = record.get("heartbeat")
            if heartbeat and now - heartbeat > self.settings.stale_timeout:
                self._kill_worker(pid)
                self._requeue(
                    job_id, "stalled",
                    pid=pid, detail={"silent_s": round(now - heartbeat, 3)},
                )
        # Forget cancel watches for jobs that reached a terminal state.
        running_ids = {r["job_id"] for r in self.store.running()}
        for job_id in list(self._cancels):
            if job_id not in running_ids:
                del self._cancels[job_id]

    def _escalate_cancel(self, record: dict, live: set, now: float) -> None:
        job_id = record["job_id"]
        pid = record.get("worker")
        watch = self._cancels.get(job_id)
        if watch is None:
            self._cancels[job_id] = _CancelWatch(first_seen=now)
            return
        if pid not in live and not _alive(pid):
            # The worker died mid-cancel; the job is as cancelled as it
            # will ever be.
            self.store.mark_cancelled(job_id)
            return
        grace = self.settings.cancel_grace
        if not watch.nudged and now - watch.first_seen > grace:
            watch.nudged = True
            try:
                os.kill(pid, signal.SIGUSR1)
            except (ProcessLookupError, OSError):
                pass
        elif watch.nudged and now - watch.first_seen > 2 * grace:
            self._kill_worker(pid)
            self.store.mark_cancelled(job_id)

    def _requeue(self, job_id: str, reason: str, *, pid: int | None,
                 detail: dict | None = None) -> None:
        detail = dict(detail or ())
        detail["pid"] = pid
        record = self.store.requeue(
            job_id, reason, expect_worker=pid, detail=detail
        )
        entries = record.get("requeues") or []
        if not entries or entries[-1].get("reason") != reason or (
            entries[-1].get("pid") != pid
        ):
            # Refused inside the store transaction: the job moved on
            # (re-claimed, finished) between our poll snapshot and now.
            return
        self.requeues += 1
        _log.warning(
            "job %s %s -> %s (attempt %d/%d)",
            job_id, reason, record["state"], record["attempts"],
            record["max_retries"] + 1,
        )

    @staticmethod
    def _kill_worker(pid: int | None) -> None:
        if not pid:
            return
        try:
            os.kill(pid, signal.SIGKILL)
        except (ProcessLookupError, OSError):
            pass

    def _respawn_dead_workers(self) -> None:
        if self._draining:
            return  # capacity is winding down; do not replace workers
        for i, proc in enumerate(self._procs):
            if not proc.is_alive():
                proc.join(timeout=0.1)
                self._procs[i] = self._spawn(i)
                self.respawns += 1
                _log.warning(
                    "worker %d (pid %s) died; respawned as pid %d",
                    i, proc.pid, self._procs[i].pid,
                )
