"""The job store's append-only JSONL journal and its invariant checker.

Every committed :class:`~repro.serve.store.JobStore` mutation (except
heartbeats, which carry no lifecycle information) appends one line to
``journal.jsonl`` under the serve root::

    {"t": ..., "op": "claim", "job": "<id>", "seq": 3,
     "state": "running", "attempts": 1, "refund": false,
     "record": {...full job record...}}

``seq`` is the job row's per-record mutation counter, bumped inside the
same ``BEGIN IMMEDIATE`` transaction as the write it describes, so the
per-job order of journal lines is recoverable even when appends from
different worker processes interleave in the file.

The journal serves two purposes:

* **Rebuild.**  When the SQLite database is corrupted (failed
  ``PRAGMA quick_check``, a ``DatabaseError`` on mutation), the store
  quarantines it and re-creates the queue from the journal: the
  highest-``seq`` record per job wins (:func:`replay`).  Terminal
  states survive; a job caught mid-run comes back as the supervisor
  left it and is requeued by the normal orphan/stale machinery.
* **Auditing.**  :func:`check_invariants` is the chaos harness's gate
  (``benchmarks/bench_chaos.py``): every submitted job reaches a
  terminal state exactly once, nothing is written after a terminal
  state, and attempt counts never regress except through an explicit
  refund (orderly shutdown / orphan requeues).

Appends are single ``write`` calls on an ``O_APPEND`` descriptor, so
concurrent writers never interleave within one line.
"""

from __future__ import annotations

import errno
import json
import os

from repro.serve.schema import TERMINAL_STATES

JOURNAL_NAME = "journal.jsonl"


class JobJournal:
    """Append-only JSONL journal of job-store mutations."""

    def __init__(self, root):
        self.root = str(root)
        self.path = os.path.join(self.root, JOURNAL_NAME)

    def append(self, entry: dict) -> None:
        """Append one entry (raises ``OSError`` e.g. on a full disk)."""
        line = json.dumps(entry, sort_keys=True)
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                     0o644)
        try:
            os.write(fd, line.encode("utf-8") + b"\n")
        finally:
            os.close(fd)

    def entries(self) -> list[dict]:
        """All parseable journal entries, in file order.

        A torn final line (a writer died mid-append, the disk filled)
        is skipped rather than fatal — the journal must stay readable
        exactly when things went wrong.
        """
        if not os.path.exists(self.path):
            return []
        out: list[dict] = []
        with open(self.path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(entry, dict) and entry.get("job"):
                    out.append(entry)
        return out

    def latest(self) -> dict:
        """``{job_id: (seq, record)}`` — the latest record per job.

        Latest means highest ``seq``; ties (and entries missing a seq)
        resolve to the later file position.  The seq rides along so a
        rebuild can seed the row's mutation counter past everything
        already journaled.
        """
        best: dict[str, tuple[int, int, dict]] = {}
        for pos, entry in enumerate(self.entries()):
            record = entry.get("record")
            if not isinstance(record, dict):
                continue
            job_id = entry["job"]
            key = (int(entry.get("seq", 0)), pos)
            if job_id not in best or key > best[job_id][:2]:
                best[job_id] = (key[0], key[1], record)
        return {job_id: (seq, rec) for job_id, (seq, _, rec) in best.items()}

    def replay(self) -> dict:
        """``{job_id: record}`` — :meth:`latest` without the seqs."""
        return {job_id: rec for job_id, (_, rec) in self.latest().items()}


def entry_for(op: str, record: dict, *, seq: int, now: float,
              refund: bool = False) -> dict:
    """Build one journal entry for a committed mutation."""
    return {
        "t": now,
        "op": op,
        "job": record["job_id"],
        "seq": int(seq),
        "state": record["state"],
        "attempts": int(record["attempts"]),
        "refund": bool(refund),
        "record": record,
    }


def check_invariants(journal: "JobJournal | str",
                     *, expect_submitted: int | None = None) -> list[str]:
    """Audit a journal; returns human-readable violations (empty = ok).

    Checked per job, over entries ordered by ``seq``:

    * exactly one ``submit`` entry, and it comes first;
    * the job reaches a terminal state **exactly once** (when it
      reaches one at all — pass ``expect_submitted`` to also require
      that every job terminated);
    * nothing is written after the terminal entry;
    * ``attempts`` never decreases except on a refund requeue, and
      never jumps by more than one.
    """
    if isinstance(journal, str):
        journal = JobJournal(os.path.dirname(journal) or ".")
    violations: list[str] = []
    per_job: dict[str, list[dict]] = {}
    for entry in journal.entries():
        per_job.setdefault(entry["job"], []).append(entry)

    terminated = 0
    for job_id, entries in per_job.items():
        entries.sort(key=lambda e: int(e.get("seq", 0)))
        submits = [e for e in entries if e.get("op") == "submit"]
        if len(submits) != 1:
            violations.append(
                f"{job_id}: {len(submits)} submit entries (expected 1)"
            )
        elif entries[0] is not submits[0]:
            violations.append(f"{job_id}: submit is not the first entry")
        terminal_seen = 0
        prev_attempts: int | None = None
        for entry in entries:
            attempts = int(entry.get("attempts", 0))
            if terminal_seen:
                violations.append(
                    f"{job_id}: entry op={entry.get('op')!r} "
                    f"seq={entry.get('seq')} written after a terminal state"
                )
            if entry.get("state") in TERMINAL_STATES:
                terminal_seen += 1
            if prev_attempts is not None:
                if attempts < prev_attempts and not entry.get("refund"):
                    violations.append(
                        f"{job_id}: attempts regressed {prev_attempts} -> "
                        f"{attempts} without a refund "
                        f"(op={entry.get('op')!r})"
                    )
                elif attempts > prev_attempts + 1:
                    violations.append(
                        f"{job_id}: attempts jumped {prev_attempts} -> "
                        f"{attempts} (op={entry.get('op')!r})"
                    )
            prev_attempts = attempts
        if terminal_seen > 1:
            violations.append(
                f"{job_id}: reached a terminal state {terminal_seen} times"
            )
        if terminal_seen:
            terminated += 1

    if expect_submitted is not None:
        if len(per_job) != expect_submitted:
            violations.append(
                f"journal holds {len(per_job)} jobs, expected "
                f"{expect_submitted} submitted"
            )
        not_terminal = len(per_job) - terminated
        if not_terminal:
            violations.append(
                f"{not_terminal} jobs never reached a terminal state"
            )
    return violations


def is_disk_full(exc: BaseException) -> bool:
    """Whether ``exc`` is an out-of-space failure (sqlite or OS level)."""
    if isinstance(exc, OSError) and exc.errno == errno.ENOSPC:
        return True
    return "disk is full" in str(exc).lower()
