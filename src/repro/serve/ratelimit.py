"""Admission control primitives for the job server.

Two small, dependency-free pieces:

* :class:`TokenBucket` — the classic refill-at-``rate``, hold-at-most-
  ``burst`` token bucket.  ``try_take`` either grants one token (returns
  ``0.0``) or returns the seconds until the next token exists — exactly
  the value the server puts in ``Retry-After``.
* :class:`RateLimiter` — a thread-safe map of client key (the
  ``X-Client-Id`` header when present, the peer address otherwise) to
  its bucket, with idle-bucket pruning so a long-lived server does not
  accumulate one bucket per ephemeral client forever.

The server composes these with a queue high-watermark check into the
contract documented in ``docs/serving.md``: per-client quota breach →
429 with ``Retry-After``; queue at capacity (or draining, or store
read-only) → 503 with ``Retry-After``.  Both are *admission* failures:
nothing was stored, and the client may simply retry later —
:class:`~repro.serve.client.ServeClient` does so automatically.
"""

from __future__ import annotations

import threading
import time


class TokenBucket:
    """Token bucket: ``rate`` tokens/second, at most ``burst`` held."""

    def __init__(self, rate: float, burst: float, *,
                 now: float | None = None):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._stamp = time.monotonic() if now is None else float(now)

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._stamp)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = now

    def try_take(self, *, now: float | None = None) -> float:
        """Take one token; ``0.0`` on success, else seconds to wait."""
        now = time.monotonic() if now is None else float(now)
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        return (1.0 - self._tokens) / self.rate


class RateLimiter:
    """Per-client token buckets (thread-safe; idle buckets pruned).

    ``rate <= 0`` disables limiting: ``check`` always grants.
    """

    #: Drop a client's bucket after this long without a request.  Must
    #: exceed the time a full bucket takes to refill, so pruning can
    #: never *grant* tokens a live bucket would still be denying.
    IDLE_SECONDS = 300.0

    def __init__(self, rate: float, burst: float | None = None):
        self.rate = float(rate)
        self.burst = float(burst) if burst else max(1.0, 2.0 * self.rate)
        self._buckets: dict[str, TokenBucket] = {}
        self._seen: dict[str, float] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def check(self, client: str, *, now: float | None = None) -> float:
        """One admission check for ``client``: ``0.0`` = admitted,
        otherwise the ``Retry-After`` seconds."""
        if not self.enabled:
            return 0.0
        now = time.monotonic() if now is None else float(now)
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, now=now)
                self._buckets[client] = bucket
            self._seen[client] = now
            retry = bucket.try_take(now=now)
            if len(self._buckets) > 64:
                self._prune(now)
            return retry

    def _prune(self, now: float) -> None:
        for key, seen in list(self._seen.items()):
            if now - seen > self.IDLE_SECONDS:
                self._buckets.pop(key, None)
                self._seen.pop(key, None)

    def describe(self) -> dict:
        with self._lock:
            return {
                "enabled": self.enabled,
                "rate": self.rate,
                "burst": self.burst,
                "clients": len(self._buckets),
            }
