"""Versioned schema for job records (the serve engine's unit of state).

One job record describes one queued placement run end to end: what to
place (a suite name, an inline benchgen spec, or a Bookshelf ``.aux``
path), how to run it (flow options, per-job worker count, stage
budgets), where it stands in the lifecycle state machine, and — once a
worker finishes it — the result summary.  Records are JSON documents
stored in the job store's SQLite ``record`` column and served verbatim
over the HTTP API, versioned by :data:`JOB_SCHEMA_VERSION` and
committed as ``docs/schemas/job-record-v1.schema.json`` (a test asserts
the committed file matches :func:`build_job_schema`).

Lifecycle states (see ``docs/serving.md`` for the transition diagram)::

    queued ──claim──> running ──ok──> done
      │                  │ │
      │                  │ └─crash/timeout─> queued (attempts <= max_retries)
      │                  │                └─> failed  (retries exhausted)
      │                  └──────cancel──────> cancelled
      └────────────────cancel───────────────> cancelled

Every requeue appends a machine-readable entry to ``requeues`` — the
job-level analogue of ``FlowResult.degradation``.
"""

from __future__ import annotations

import time
import uuid

from repro.obs.schema import SchemaError, validate

#: Job-record schema version.
JOB_SCHEMA_VERSION = 1

#: The lifecycle states a job can be in.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job never leaves.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

_NUM = {"type": ["number", "integer"]}
_OPT_NUM = {"type": ["number", "integer", "null"]}
_STR = {"type": "string"}
_OPT_STR = {"type": ["string", "null"]}
_INT = {"type": "integer"}
_OPT_INT = {"type": ["integer", "null"]}
_BOOL = {"type": "boolean"}
_OBJ = {"type": "object"}
_OPT_OBJ = {"type": ["object", "null"]}


def build_job_schema() -> dict:
    """The JSON-Schema document for serve job records."""
    return {
        "$id": f"repro/job-record/v{JOB_SCHEMA_VERSION}",
        "title": "repro.serve job record",
        "version": JOB_SCHEMA_VERSION,
        "records": {
            "job": {
                "type": "object",
                "properties": {
                    "schema": _INT,
                    "job_id": _STR,
                    "created": _NUM,
                    "priority": _INT,
                    "state": {"enum": list(JOB_STATES)},
                    "attempts": {"type": "integer", "minimum": 0},
                    "max_retries": {"type": "integer", "minimum": 0},
                    # What to place: exactly one of suite/spec/aux.
                    "design": {
                        "type": "object",
                        "properties": {
                            "suite": _STR,
                            "spec": _OBJ,
                            "aux": _STR,
                        },
                        "additionalProperties": False,
                    },
                    # How to run it (all optional; see docs/serving.md).
                    "options": {
                        "type": "object",
                        "properties": {
                            "route": _BOOL,
                            "run_dp": _BOOL,
                            "wirelength_only": _BOOL,
                            # Per-job worker-process count for the flow's
                            # parallel stages; pinned, so the server's
                            # REPRO_WORKERS cannot oversubscribe cores.
                            "workers": _INT,
                            # Dotted FlowConfig overrides, e.g.
                            # {"gp.max_outer_iterations": 12}.
                            "config": _OBJ,
                            "stage_budget": _OBJ,
                            # Hard wall-clock budget for one attempt, in
                            # seconds; the supervisor kills and requeues
                            # past it.
                            "timeout": _OPT_NUM,
                            # REPRO_FAULTS-style spec installed for this
                            # job only (chaos/CI hook).
                            "faults": _OPT_STR,
                        },
                        "additionalProperties": False,
                    },
                    # Lifecycle timestamps and ownership.
                    "submitted": _NUM,
                    "started": _OPT_NUM,
                    "finished": _OPT_NUM,
                    "worker": _OPT_INT,
                    "heartbeat": _OPT_NUM,
                    "stage": _OPT_STR,
                    "cancel_requested": _BOOL,
                    # Artifacts.
                    "job_dir": _OPT_STR,
                    "trace_path": _OPT_STR,
                    "checkpoint_dir": _OPT_STR,
                    # Outcome.
                    "result": _OPT_OBJ,
                    "error": _OPT_STR,
                    "requeues": {"type": "array", "items": _OBJ},
                },
                "required": [
                    "schema", "job_id", "created", "priority", "state",
                    "attempts", "max_retries", "design", "options",
                    "submitted", "cancel_requested", "requeues",
                ],
                "additionalProperties": False,
            }
        },
    }


def validate_job_record(record: dict) -> None:
    """Validate one job record; raises :class:`SchemaError` on mismatch."""
    validate(record, build_job_schema()["records"]["job"])
    design = record.get("design", {})
    sources = [k for k in ("suite", "spec", "aux") if k in design]
    if len(sources) != 1:
        raise SchemaError(
            "design must name exactly one of suite/spec/aux, "
            f"got {sources or 'none'}"
        )


def new_job_id(hint: str = "job") -> str:
    """``<hint>-<utc stamp>-<nonce>`` — sortable, unique, greppable."""
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    return f"{hint}-{stamp}-{uuid.uuid4().hex[:8]}"


def new_job_record(
    design: dict,
    *,
    options: dict | None = None,
    priority: int = 0,
    max_retries: int = 2,
    now: float | None = None,
) -> dict:
    """A fresh ``queued`` job record for one submission (validated)."""
    now = time.time() if now is None else float(now)
    hint = design.get("suite") or design.get("spec", {}).get("name") or "job"
    record = {
        "schema": JOB_SCHEMA_VERSION,
        "job_id": new_job_id(str(hint)),
        "created": now,
        "priority": int(priority),
        "state": "queued",
        "attempts": 0,
        "max_retries": int(max_retries),
        "design": dict(design),
        "options": dict(options or {}),
        "submitted": now,
        "started": None,
        "finished": None,
        "worker": None,
        "heartbeat": None,
        "stage": None,
        "cancel_requested": False,
        "job_dir": None,
        "trace_path": None,
        "checkpoint_dir": None,
        "result": None,
        "error": None,
        "requeues": [],
    }
    validate_job_record(record)
    return record
