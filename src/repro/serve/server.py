"""The HTTP face of the job engine (stdlib ``http.server`` only).

:class:`JobServer` composes the three serve pieces — the persistent
:class:`~repro.serve.store.JobStore`, the
:class:`~repro.serve.engine.WorkerSupervisor`, and a threading HTTP
server — into one placement-as-a-service endpoint.  The API is plain
JSON over HTTP (see ``docs/serving.md``):

====================  =====================================================
``GET  /health``      server + worker liveness, queue counts, drain and
                      store state
``GET  /healthz``     liveness only (200 while the process serves)
``GET  /readyz``      readiness: store writable, supervisor alive,
                      queue below the high-watermark, not draining;
                      503 + reasons otherwise
``POST /jobs``        submit a job; body ``{"design": {...}, "options":
                      {...}, "priority": n, "max_retries": n}``; 201 +
                      the stored record.  Refused with 429 (per-client
                      quota, ``Retry-After``) or 503 (queue full,
                      draining, store read-only — also ``Retry-After``)
``POST /drain``       drain the engine: stop claiming, wait for
                      in-flight jobs (``{"timeout": s}``), refuse new
                      submits from now on
``GET  /jobs``        list records (``?state=queued&limit=50&offset=0``;
                      ``limit`` is clamped to 1000 — page via
                      ``offset``)
``GET  /jobs/<id>``   one record (unique id prefix accepted)
``GET  /jobs/<id>/result``  result summary; 409 while not terminal
``POST /jobs/<id>/cancel``  cancel (immediate if queued, cooperative if
                      running)
``GET  /jobs/<id>/trace?offset=N``  tail the live attempt trace from
                      byte ``N``; returns new offset + JSONL lines
====================  =====================================================

Overload behavior is contractual (see ``docs/serving.md``): every 429
and every overload 503 carries a ``Retry-After`` header, and
:class:`~repro.serve.client.ServeClient` honors it.  Rate limiting
keys on the ``X-Client-Id`` header when the client sends one, the
peer address otherwise.

Progress streaming is pull-based tailing of each job's
:class:`~repro.obs.bus.JsonlStreamSink` file: the worker appends
records as they happen, ``/trace`` serves the bytes past the caller's
offset, and the client loops — no sockets to babysit, and the trace
survives the server.
"""

from __future__ import annotations

import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.obs import get_logger
from repro.obs.schema import SchemaError
from repro.resilience.faults import check_fault
from repro.serve.engine import ServeSettings, WorkerSupervisor
from repro.serve.ratelimit import RateLimiter
from repro.serve.schema import TERMINAL_STATES
from repro.serve.store import (
    JobStore,
    JobStoreError,
    JobStoreReadOnly,
    JobStoreWriteError,
)

_log = get_logger("serve.server")

#: Submission body size cap (a benchgen spec is tiny; 1 MiB is generous).
MAX_BODY_BYTES = 1 << 20

#: Hard cap on ``GET /jobs?limit=``; clients page with ``offset``.
MAX_LIST_LIMIT = 1000

#: ``/readyz`` reports not-ready at this fraction of ``max_queue_depth``.
QUEUE_HIGH_WATERMARK = 0.8


class JobServer:
    """HTTP job-submission server wrapping a supervisor and a store."""

    def __init__(
        self,
        root,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        settings: ServeSettings | None = None,
    ):
        self.root = str(root)
        self.settings = settings or ServeSettings()
        self.store = JobStore(self.root)
        self.supervisor = WorkerSupervisor(self.root, self.settings)
        self.ratelimit = RateLimiter(
            self.settings.rate_limit, self.settings.rate_burst or None
        )
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None
        self._closed = False

    # -- lifecycle -----------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "JobServer":
        self.supervisor.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="serve-http",
            daemon=True,
        )
        self._thread.start()
        _log.info("serving jobs on %s (root %s)", self.url, self.root)
        return self

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd.server_close()
        self.supervisor.close()

    def __enter__(self) -> "JobServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- request-level operations --------------------------------------
    def health(self) -> dict:
        return {
            "ok": True,
            "root": self.root,
            "queue": self.store.counts(),
            "supervisor": self.supervisor.describe(),
            "draining": self.supervisor.draining,
            "read_only": self.store.read_only,
            "ratelimit": self.ratelimit.describe(),
        }

    def readiness(self) -> tuple[bool, dict]:
        """``(ready, payload)`` behind ``GET /readyz``.

        Ready means: not draining, the store accepts writes (a real
        probe write, not just the flag), live workers exist when any
        were configured, and the queue sits below the high-watermark
        (80% of ``max_queue_depth``) — so balancers stop routing here
        *before* submits start bouncing with 503.
        """
        reasons: list[str] = []
        if self.supervisor.draining:
            reasons.append("draining")
        if not self.store.writable(probe=True):
            reasons.append("store is not writable")
        if (
            self.settings.workers > 0
            and self.supervisor._started
            and not self.supervisor.worker_pids()
        ):
            reasons.append("no live workers")
        queued = self.store.counts().get("queued", 0)
        watermark = max(
            1, int(self.settings.max_queue_depth * QUEUE_HIGH_WATERMARK)
        )
        if queued >= watermark:
            reasons.append(
                f"queue above high-watermark ({queued} >= {watermark})"
            )
        return (
            not reasons,
            {"ready": not reasons, "reasons": reasons, "queued": queued},
        )

    def admit(self, client: str) -> tuple[int, str, float] | None:
        """Admission check for one submit.

        ``None`` admits; otherwise ``(status, message, retry_after)``
        per the overload contract: 503 while draining or with the
        queue at ``max_queue_depth``, 429 on a per-client quota breach.
        (A read-only store is not pre-checked here — the submit itself
        raises :class:`JobStoreReadOnly`, mapped to 503, which lets the
        store's self-heal probe run.)
        """
        if self.supervisor.draining:
            return (503, "draining; not accepting new jobs", 2.0)
        retry = self.ratelimit.check(client)
        if retry > 0.0:
            return (
                429,
                f"rate limit exceeded for client {client!r}",
                retry,
            )
        queued = self.store.counts().get("queued", 0)
        if queued >= self.settings.max_queue_depth:
            return (
                503,
                f"queue is full ({queued}/{self.settings.max_queue_depth})",
                2.0,
            )
        return None

    def drain(self, timeout: float | None = None) -> dict:
        """Drain the engine (see :meth:`WorkerSupervisor.drain`)."""
        return self.supervisor.drain(timeout)

    def submit(self, body: dict) -> dict:
        design = body.get("design")
        if not isinstance(design, dict):
            raise SchemaError("body must carry a 'design' object")
        max_retries = body.get(
            "max_retries", self.settings.default_max_retries
        )
        return self.store.submit(
            design,
            options=body.get("options"),
            priority=int(body.get("priority", 0)),
            max_retries=int(max_retries),
        )

    def tail_trace(self, job_id: str, offset: int) -> dict:
        record = self.store.get(job_id)
        path = record.get("trace_path")
        out = {
            "job_id": record["job_id"],
            "state": record["state"],
            "offset": offset,
            "lines": [],
        }
        if not path or not os.path.exists(path):
            return out
        size = os.path.getsize(path)
        if offset > size:
            offset = 0  # a new attempt started a fresh trace file
        with open(path, "rb") as fh:
            fh.seek(offset)
            chunk = fh.read()
        # Serve whole lines only; a partially flushed record waits for
        # the next poll.
        cut = chunk.rfind(b"\n")
        if cut < 0:
            out["offset"] = offset
            return out
        out["offset"] = offset + cut + 1
        out["lines"] = chunk[: cut].decode("utf-8", "replace").splitlines()
        return out


def _make_handler(server: JobServer):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        # -- plumbing --------------------------------------------------
        def log_message(self, fmt, *args):  # noqa: A003 - http.server API
            _log.debug("%s " + fmt, self.address_string(), *args)

        def _reply(self, status: int, payload: dict, *,
                   headers: dict | None = None) -> None:
            blob = json.dumps(payload, sort_keys=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(blob)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(blob)

        def _error(self, status: int, message: str, *,
                   retry_after: float | None = None) -> None:
            headers = None
            payload: dict = {"error": message}
            if retry_after is not None:
                # Whole seconds, rounded up — the header is integral.
                seconds = max(1, int(-(-float(retry_after) // 1)))
                headers = {"Retry-After": str(seconds)}
                payload["retry_after"] = seconds
            self._reply(status, payload, headers=headers)

        def _client_key(self) -> str:
            header = self.headers.get("X-Client-Id")
            if header:
                return header.strip()
            return str(self.client_address[0])

        def _body(self) -> dict | None:
            length = int(self.headers.get("Content-Length") or 0)
            if length > MAX_BODY_BYTES:
                self._error(413, "request body too large")
                return None
            raw = self.rfile.read(length) if length else b"{}"
            try:
                body = json.loads(raw.decode("utf-8") or "{}")
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                self._error(400, f"bad JSON body: {exc}")
                return None
            if not isinstance(body, dict):
                self._error(400, "body must be a JSON object")
                return None
            return body

        # -- routing ---------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 - http.server API
            parsed = urlparse(self.path)
            parts = [p for p in parsed.path.split("/") if p]
            query = parse_qs(parsed.query)
            try:
                if check_fault("serve.http_500") is not None:
                    self._error(500, "injected fault: serve.http_500",
                                retry_after=1.0)
                    return
                if parts == ["health"]:
                    self._reply(200, server.health())
                elif parts == ["healthz"]:
                    self._reply(200, {"ok": True})
                elif parts == ["readyz"]:
                    ready, payload = server.readiness()
                    if ready:
                        self._reply(200, payload)
                    else:
                        self._reply(503, payload,
                                    headers={"Retry-After": "2"})
                elif parts == ["jobs"]:
                    state = (query.get("state") or [None])[0]
                    limit = int((query.get("limit") or [100])[0])
                    limit = max(1, min(limit, MAX_LIST_LIMIT))
                    offset = max(0, int((query.get("offset") or [0])[0]))
                    self._reply(
                        200,
                        {"jobs": server.store.list(
                            state=state, limit=limit, offset=offset
                        )},
                    )
                elif len(parts) == 2 and parts[0] == "jobs":
                    self._reply(200, server.store.get(parts[1]))
                elif len(parts) == 3 and parts[0] == "jobs" \
                        and parts[2] == "result":
                    record = server.store.get(parts[1])
                    if record["state"] not in TERMINAL_STATES:
                        self._error(
                            409,
                            f"job {record['job_id']} is {record['state']}",
                        )
                    else:
                        self._reply(200, record)
                elif len(parts) == 3 and parts[0] == "jobs" \
                        and parts[2] == "trace":
                    offset = int((query.get("offset") or [0])[0])
                    self._reply(200, server.tail_trace(parts[1], offset))
                else:
                    self._error(404, f"no route {parsed.path!r}")
            except (JobStoreReadOnly, JobStoreWriteError) as exc:
                self._error(503, str(exc), retry_after=5.0)
            except JobStoreError as exc:
                self._error(404, str(exc))
            except ValueError as exc:
                self._error(400, str(exc))

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            parsed = urlparse(self.path)
            parts = [p for p in parsed.path.split("/") if p]
            try:
                if check_fault("serve.http_500") is not None:
                    self._error(500, "injected fault: serve.http_500",
                                retry_after=1.0)
                    return
                if parts == ["jobs"]:
                    refusal = server.admit(self._client_key())
                    if refusal is not None:
                        status, message, retry_after = refusal
                        self._error(status, message,
                                    retry_after=retry_after)
                        return
                    body = self._body()
                    if body is None:
                        return
                    self._reply(201, server.submit(body))
                elif parts == ["drain"]:
                    body = self._body()
                    if body is None:
                        return
                    timeout = body.get("timeout")
                    self._reply(
                        200,
                        server.drain(
                            None if timeout is None else float(timeout)
                        ),
                    )
                elif len(parts) == 3 and parts[0] == "jobs" \
                        and parts[2] == "cancel":
                    self._reply(
                        200, server.store.request_cancel(parts[1])
                    )
                else:
                    self._error(404, f"no route {parsed.path!r}")
            except (JobStoreReadOnly, JobStoreWriteError) as exc:
                # Degraded or transiently failing store: the submit was
                # not accepted; the client retries after a beat.
                self._error(503, str(exc), retry_after=5.0)
            except JobStoreError as exc:
                self._error(404, str(exc))
            except SchemaError as exc:
                self._error(400, f"invalid job: {exc}")
            except (TypeError, ValueError) as exc:
                self._error(400, str(exc))

    return Handler
