"""The persistent priority job queue backing the serve engine.

Storage follows :class:`repro.obs.runs.RunRegistry`: one SQLite
database under the serve root (``jobs.sqlite``) holding the full JSON
record per job plus mirrored hot columns (state, priority, heartbeat,
worker pid) for queries.  Unlike the run registry the store is written
concurrently by several *processes* — the HTTP server and every worker
— so connections run in WAL mode with a busy timeout, and **every**
mutation (not just the queued->running claim) is a single
``BEGIN IMMEDIATE`` read-modify-write transaction.  A fetch outside
the write transaction would be a lost-update bug: a concurrent
transition (claim, requeue, finish) committed between the fetch and
the write would be silently resurrected by the stale full-record
write — observed in practice as a job claimed twice at the same
attempt number, two processes running it concurrently.

On top of atomicity, writes from workers are *attempt-scoped*: the
worker passes the attempt number it claimed, and the store refuses the
write (``superseded``) when the record has moved on — so a zombie
attempt (a worker the supervisor believed dead, a beat thread that
outlived its join timeout) can never stamp heartbeats, clobber paths,
or overwrite the real attempt's result.  The supervisor's requeue is
likewise guarded by the worker pid it observed, because its poll
snapshot is stale by construction.

``claim`` orders by ``priority DESC, created ASC, job_id`` — higher
priority first, FIFO within a priority band.  A store marked
*draining* (``set_draining``) refuses claims — workers idle out while
in-flight jobs finish, the graceful-shutdown half of the overload
story.

Failure modes degrade, never crash (see ``docs/serving.md``):

* every committed mutation (except heartbeats) is mirrored to an
  append-only JSONL journal (:class:`~repro.serve.journal.JobJournal`);
* a corrupted database — failed ``PRAGMA quick_check`` on open, a
  ``sqlite3.DatabaseError`` on mutation with a failing integrity check
  — is quarantined and the queue rebuilt from the journal
  (:meth:`JobStore.recover`);
* a full disk (``ENOSPC`` / sqlite "disk is full") flips the store
  into **read-only** mode: reads keep working, mutations raise
  :class:`JobStoreReadOnly` (the server answers 503), and every later
  mutation re-probes writability so the store heals itself once space
  frees up.
"""

from __future__ import annotations

import contextlib
import json
import os
import sqlite3
import time

from repro.obs import get_logger
from repro.resilience.faults import check_fault
from repro.serve.journal import JobJournal, entry_for, is_disk_full
from repro.serve.schema import (
    JOB_SCHEMA_VERSION,
    TERMINAL_STATES,
    new_job_record,
    validate_job_record,
)

_log = get_logger("serve.store")


class JobStoreError(RuntimeError):
    """Lookup or storage failure in the job store."""


class JobStoreWriteError(JobStoreError):
    """A mutation failed (transient or post-recovery); safe to retry."""


class JobStoreReadOnly(JobStoreError):
    """The store is degraded to read-only (disk full, failed recovery)."""


class _WriteTxn:
    """One open write transaction plus the journal entries it produced."""

    def __init__(self, con: sqlite3.Connection):
        self.con = con
        self.entries: list[dict] = []

    def execute(self, sql: str, params=()):
        return self.con.execute(sql, params)


class JobStore:
    """SQLite-backed persistent priority job queue (multi-process safe)."""

    DB_NAME = "jobs.sqlite"

    def __init__(self, root):
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        self.db_path = os.path.join(self.root, self.DB_NAME)
        self.journal = JobJournal(self.root)
        #: Read-only reason, or ``None`` when writable.
        self._read_only: str | None = None
        #: Journal rebuilds performed by this instance.
        self.recoveries = 0
        try:
            existed = os.path.exists(self.db_path)
            with contextlib.closing(self._connect()) as con, con:
                if existed and not self._quick_check(con):
                    raise sqlite3.DatabaseError("PRAGMA quick_check failed")
                self._create_schema(con)
        except sqlite3.DatabaseError as exc:
            self.recover(f"corrupt database on open: {exc}")

    # -- plumbing ------------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        con = sqlite3.connect(self.db_path, timeout=30.0)
        con.execute("PRAGMA journal_mode=WAL")
        con.execute("PRAGMA busy_timeout=30000")
        return con

    @staticmethod
    def _create_schema(con: sqlite3.Connection) -> None:
        con.execute(
            "CREATE TABLE IF NOT EXISTS jobs ("
            " job_id TEXT PRIMARY KEY,"
            " created REAL NOT NULL,"
            " priority INTEGER NOT NULL,"
            " state TEXT NOT NULL,"
            " attempts INTEGER NOT NULL,"
            " worker INTEGER,"
            " heartbeat REAL,"
            " cancel_requested INTEGER NOT NULL DEFAULT 0,"
            " seq INTEGER NOT NULL DEFAULT 0,"
            " record TEXT NOT NULL)"
        )
        con.execute(
            "CREATE INDEX IF NOT EXISTS idx_jobs_state_priority"
            " ON jobs(state, priority DESC, created)"
        )
        con.execute(
            "CREATE TABLE IF NOT EXISTS control ("
            " key TEXT PRIMARY KEY, value TEXT NOT NULL)"
        )

    @staticmethod
    def _quick_check(con: sqlite3.Connection) -> bool:
        try:
            row = con.execute("PRAGMA quick_check").fetchone()
        except sqlite3.DatabaseError:
            return False
        return bool(row) and row[0] == "ok"

    @contextlib.contextmanager
    def _txn(self):
        """One ``BEGIN IMMEDIATE`` write transaction on a fresh connection.

        The write lock is taken *before* any read, so a fetch inside the
        block can never go stale under a concurrent writer — the whole
        read-modify-write is atomic.  Commits on success, rolls back on
        any exception, always closes the connection.  After the commit,
        the journal entries collected by :meth:`_put` are appended; a
        sqlite failure is classified by :meth:`_on_write_error` into
        read-only degradation, journal rebuild, or a retryable
        :class:`JobStoreWriteError`.
        """
        self._ensure_writable()
        committed = False
        try:
            con = self._connect()
        except sqlite3.DatabaseError as exc:
            self._on_write_error(exc)
        txn = _WriteTxn(con)
        try:
            try:
                con.isolation_level = None
                con.execute("BEGIN IMMEDIATE")
                try:
                    yield txn
                    if check_fault("serve.store_write") is not None:
                        raise sqlite3.OperationalError(
                            "injected fault: serve.store_write"
                        )
                    if check_fault("serve.disk_full") is not None:
                        raise sqlite3.OperationalError(
                            "database or disk is full "
                            "(injected fault: serve.disk_full)"
                        )
                    con.execute("COMMIT")
                    committed = True
                except BaseException:
                    try:
                        con.execute("ROLLBACK")
                    except sqlite3.Error:
                        pass
                    raise
            except sqlite3.DatabaseError as exc:
                self._on_write_error(exc)
        finally:
            con.close()
        if committed:
            self._journal_entries(txn.entries)

    def _journal_entries(self, entries: list[dict]) -> None:
        for entry in entries:
            try:
                self.journal.append(entry)
            except OSError as exc:
                if is_disk_full(exc):
                    self._degrade(f"journal append hit a full disk: {exc}")
                else:
                    _log.warning("journal append failed: %s", exc)

    @contextlib.contextmanager
    def _read(self):
        """A read-only connection, closed on exit."""
        con = self._connect()
        try:
            yield con
        finally:
            con.close()

    # -- degraded modes and recovery -----------------------------------
    @property
    def read_only(self) -> str | None:
        """The read-only reason, or ``None`` when the store is writable."""
        return self._read_only

    def _degrade(self, reason: str) -> None:
        if self._read_only is None:
            _log.warning("job store degrading to read-only: %s", reason)
        self._read_only = reason

    def _ensure_writable(self) -> None:
        if self._read_only is None:
            return
        # Self-heal: if the probe write goes through (space freed, the
        # transient cleared), leave read-only mode and serve the
        # mutation; otherwise refuse it without touching sqlite.
        if self.writable(probe=True):
            _log.warning(
                "job store writable again (was read-only: %s)",
                self._read_only,
            )
            self._read_only = None
            return
        raise JobStoreReadOnly(
            f"job store is read-only ({self._read_only})"
        )

    def writable(self, *, probe: bool = False) -> bool:
        """Whether mutations would be accepted right now.

        With ``probe=True`` an actual control-row write is attempted —
        the readiness check the server's ``/readyz`` uses.  Fault
        points are deliberately not consulted: the probe reports the
        real state of the disk, not the chaos schedule.
        """
        if self._read_only is not None and not probe:
            return False
        try:
            with contextlib.closing(self._connect()) as con:
                con.isolation_level = None
                con.execute("BEGIN IMMEDIATE")
                con.execute(
                    "INSERT OR REPLACE INTO control (key, value)"
                    " VALUES ('probe', ?)",
                    (repr(time.time()),),
                )
                con.execute("COMMIT")
            return True
        except (sqlite3.DatabaseError, OSError):
            return False

    def _integrity_ok(self) -> bool:
        try:
            with contextlib.closing(self._connect()) as con:
                return self._quick_check(con)
        except sqlite3.DatabaseError:
            return False

    def _on_write_error(self, exc: BaseException) -> None:
        """Classify a sqlite mutation failure; always raises."""
        if is_disk_full(exc):
            self._degrade(f"disk full: {exc}")
            raise JobStoreReadOnly(
                f"job store is read-only (disk full: {exc})"
            ) from exc
        if self._integrity_ok():
            # The database itself is fine — a transient failure (or an
            # injected serve.store_write fault).  The write was rolled
            # back; the caller may retry.
            raise JobStoreWriteError(
                f"job store write failed: {exc}"
            ) from exc
        rebuilt = self.recover(f"corruption detected on write: {exc}")
        raise JobStoreWriteError(
            f"job store was corrupt and has been rebuilt from the journal"
            f" ({rebuilt} jobs); retry: {exc}"
        ) from exc

    def recover(self, reason: str) -> int:
        """Quarantine the database and rebuild it from the journal.

        Returns the number of jobs rebuilt.  Terminal states survive
        exactly; jobs caught ``queued``/``running`` come back as the
        journal last saw them and flow through the supervisor's normal
        orphan/stale requeue machinery.  If even the rebuild cannot be
        written the store degrades to read-only instead of raising.
        """
        _log.warning("job store recovery: %s", reason)
        stamp = int(time.time() * 1000)
        for suffix in ("", "-wal", "-shm"):
            path = self.db_path + suffix
            if os.path.exists(path):
                quarantine = f"{self.db_path}.quarantine-{stamp}{suffix}"
                try:
                    os.replace(path, quarantine)
                except OSError:
                    pass  # a concurrent recover won the rename
        latest = self.journal.latest()
        try:
            with contextlib.closing(self._connect()) as con, con:
                self._create_schema(con)
                for seq, record in latest.values():
                    con.execute(
                        "INSERT OR REPLACE INTO jobs (job_id, created,"
                        " priority, state, attempts, worker, heartbeat,"
                        " cancel_requested, seq, record)"
                        " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                        (
                            record["job_id"],
                            record["created"],
                            record["priority"],
                            record["state"],
                            record["attempts"],
                            record.get("worker"),
                            record.get("heartbeat"),
                            1 if record.get("cancel_requested") else 0,
                            int(seq),
                            self._dump(record),
                        ),
                    )
        except (sqlite3.DatabaseError, OSError) as exc:
            self._degrade(f"rebuild from journal failed: {exc}")
            self.recoveries += 1
            return 0
        self.recoveries += 1
        self._read_only = None
        _log.warning(
            "job store rebuilt from journal: %d jobs restored", len(latest)
        )
        return len(latest)

    # -- draining ------------------------------------------------------
    def set_draining(self, draining: bool) -> None:
        """Flip the drain flag (cross-process: workers stop claiming)."""
        with self._txn() as txn:
            txn.execute(
                "INSERT OR REPLACE INTO control (key, value)"
                " VALUES ('draining', ?)",
                ("1" if draining else "0",),
            )

    def draining(self) -> bool:
        """Whether the store refuses claims (drain in progress)."""
        try:
            with self._read() as con:
                row = con.execute(
                    "SELECT value FROM control WHERE key = 'draining'"
                ).fetchone()
        except sqlite3.DatabaseError:
            return False
        return bool(row) and row[0] == "1"

    @staticmethod
    def _superseded(record: dict, attempt: int | None) -> bool:
        """Whether a worker-side write for ``attempt`` lost its lease."""
        if attempt is None:
            return False
        return (
            record["state"] != "running"
            or int(record["attempts"]) != int(attempt)
        )

    # -- helpers -------------------------------------------------------
    @staticmethod
    def _dump(record: dict) -> str:
        return json.dumps(record, sort_keys=True)

    def _put(self, txn: _WriteTxn, record: dict, op: str, *,
             refund: bool = False) -> None:
        """Write ``record`` plus its mirrored columns (inside a txn).

        Bumps the row's mutation ``seq`` and queues a journal entry —
        except for heartbeats, which carry no lifecycle information
        and would bloat the journal at beat cadence.
        """
        txn.execute(
            "UPDATE jobs SET state = ?, attempts = ?, worker = ?,"
            " heartbeat = ?, cancel_requested = ?, seq = seq + 1,"
            " record = ? WHERE job_id = ?",
            (
                record["state"],
                record["attempts"],
                record["worker"],
                record["heartbeat"],
                1 if record["cancel_requested"] else 0,
                self._dump(record),
                record["job_id"],
            ),
        )
        if op == "heartbeat":
            return
        row = txn.execute(
            "SELECT seq FROM jobs WHERE job_id = ?", (record["job_id"],)
        ).fetchone()
        txn.entries.append(
            entry_for(op, record, seq=row[0] if row else 0,
                      now=time.time(), refund=refund)
        )

    def _fetch(self, txn, job_id: str) -> dict:
        row = txn.execute(
            "SELECT record FROM jobs WHERE job_id = ?", (job_id,)
        ).fetchone()
        if row is None:
            raise JobStoreError(f"no job {job_id!r} in {self.root}")
        return json.loads(row[0])

    # -- submission ----------------------------------------------------
    def submit(
        self,
        design: dict,
        *,
        options: dict | None = None,
        priority: int = 0,
        max_retries: int = 2,
    ) -> dict:
        """Queue one job; returns its (validated) record."""
        record = new_job_record(
            design,
            options=options,
            priority=priority,
            max_retries=max_retries,
        )
        with self._txn() as txn:
            txn.execute(
                "INSERT INTO jobs (job_id, created, priority, state,"
                " attempts, worker, heartbeat, cancel_requested, seq,"
                " record) VALUES (?, ?, ?, ?, ?, ?, ?, 0, 1, ?)",
                (
                    record["job_id"],
                    record["created"],
                    record["priority"],
                    record["state"],
                    record["attempts"],
                    None,
                    None,
                    self._dump(record),
                ),
            )
            txn.entries.append(
                entry_for("submit", record, seq=1, now=time.time())
            )
        return record

    # -- the claim (queued -> running) ---------------------------------
    def claim(self, worker_pid: int, *, now: float | None = None) -> dict | None:
        """Atomically take the best queued job; ``None`` when idle.

        Claiming increments ``attempts`` (attempts counts *starts*) and
        stamps ``started``/``heartbeat``/``worker``.  A draining store
        claims nothing — workers idle while in-flight jobs finish.
        """
        now = time.time() if now is None else float(now)
        with self._txn() as txn:
            drain = txn.execute(
                "SELECT value FROM control WHERE key = 'draining'"
            ).fetchone()
            if drain and drain[0] == "1":
                return None
            row = txn.execute(
                "SELECT job_id, record FROM jobs"
                " WHERE state = 'queued' AND cancel_requested = 0"
                " ORDER BY priority DESC, created ASC, job_id ASC LIMIT 1"
            ).fetchone()
            if row is None:
                return None
            record = json.loads(row[1])
            record["state"] = "running"
            record["attempts"] = int(record["attempts"]) + 1
            record["worker"] = int(worker_pid)
            record["started"] = now
            record["heartbeat"] = now
            record["stage"] = None
            self._put(txn, record, "claim")
            return record

    # -- liveness ------------------------------------------------------
    def heartbeat(
        self, job_id: str, *, attempt: int | None = None,
        stage: str | None = None, now: float | None = None,
    ) -> str:
        """Stamp a running job's heartbeat.

        Returns ``"ok"``, ``"cancel"`` (cancel requested — the worker
        should wind the job down), or ``"superseded"`` (the record
        moved past ``attempt``; the caller no longer owns this job and
        nothing was written).
        """
        now = time.time() if now is None else float(now)
        with self._txn() as txn:
            record = self._fetch(txn, job_id)
            if self._superseded(record, attempt) or (
                attempt is None and record["state"] != "running"
            ):
                return "superseded"
            record["heartbeat"] = now
            if stage is not None:
                record["stage"] = stage
            self._put(txn, record, "heartbeat")
            return "cancel" if record["cancel_requested"] else "ok"

    def set_paths(
        self, job_id: str, *, attempt: int | None = None,
        job_dir: str | None = None, trace_path: str | None = None,
        checkpoint_dir: str | None = None,
    ) -> bool:
        """Attach artifact paths to a job record (``False`` = superseded)."""
        with self._txn() as txn:
            record = self._fetch(txn, job_id)
            if self._superseded(record, attempt):
                return False
            if job_dir is not None:
                record["job_dir"] = str(job_dir)
            if trace_path is not None:
                record["trace_path"] = str(trace_path)
            if checkpoint_dir is not None:
                record["checkpoint_dir"] = str(checkpoint_dir)
            self._put(txn, record, "set_paths")
            return True

    # -- terminal transitions ------------------------------------------
    def finish(self, job_id: str, result: dict, *,
               attempt: int | None = None,
               now: float | None = None) -> dict:
        """running -> done, with the flow-result summary attached."""
        return self._terminal(job_id, "done", now, attempt=attempt,
                              result=result, op="finish")

    def fail(self, job_id: str, error: str, *,
             attempt: int | None = None,
             now: float | None = None) -> dict:
        """running/queued -> failed, with a human-readable reason."""
        return self._terminal(job_id, "failed", now, attempt=attempt,
                              error=error, op="fail")

    def mark_cancelled(self, job_id: str, *, attempt: int | None = None,
                       now: float | None = None) -> dict:
        """running/queued -> cancelled."""
        return self._terminal(job_id, "cancelled", now, attempt=attempt,
                              op="cancel")

    def _terminal(self, job_id: str, state: str, now: float | None,
                  *, attempt: int | None = None,
                  result: dict | None = None,
                  error: str | None = None,
                  op: str = "terminal") -> dict:
        now = time.time() if now is None else float(now)
        with self._txn() as txn:
            record = self._fetch(txn, job_id)
            if record["state"] in TERMINAL_STATES:
                return record  # idempotent: first terminal state wins
            if self._superseded(record, attempt):
                # A zombie attempt must not overwrite the live one's
                # outcome; the caller's view of the job is history.
                return record
            record["state"] = state
            record["finished"] = now
            record["worker"] = None
            if result is not None:
                record["result"] = result
            if error is not None:
                record["error"] = error
            validate_job_record(record)
            self._put(txn, record, op)
            return record

    # -- cancellation --------------------------------------------------
    def request_cancel(self, job_id: str, *,
                       now: float | None = None) -> dict:
        """Cancel a queued job immediately; flag a running one.

        A queued job flips straight to ``cancelled``.  A running job
        gets ``cancel_requested`` set — its worker winds down
        cooperatively at the next telemetry beat and marks it cancelled
        (the supervisor escalates if it doesn't).  Terminal jobs are
        left untouched.
        """
        now = time.time() if now is None else float(now)
        with self._txn() as txn:
            record = self._fetch(txn, job_id)
            if record["state"] == "queued":
                record["state"] = "cancelled"
                record["finished"] = now
                record["cancel_requested"] = True
                self._put(txn, record, "cancel")
            elif record["state"] == "running":
                record["cancel_requested"] = True
                self._put(txn, record, "cancel_requested")
            return record

    # -- requeue (crash / timeout / shutdown recovery) -----------------
    def requeue(
        self,
        job_id: str,
        reason: str,
        *,
        count_attempt: bool = True,
        attempt: int | None = None,
        expect_worker: int | None = None,
        detail: dict | None = None,
        now: float | None = None,
    ) -> dict:
        """running -> queued (bounded) or failed (retries exhausted).

        ``count_attempt=False`` refunds the started attempt — used for
        orderly shutdown, where the interruption is the server's fault,
        not the job's.  Every requeue appends a machine-readable entry
        to the record's ``requeues`` list.

        ``attempt`` (worker callers) and ``expect_worker`` (supervisor
        callers, whose poll snapshot is stale by construction) are
        preconditions checked inside the transaction: when the record
        has already moved on — re-claimed by another worker, finished —
        the requeue is refused and the current record returned
        unchanged.
        """
        now = time.time() if now is None else float(now)
        with self._txn() as txn:
            record = self._fetch(txn, job_id)
            if record["state"] in TERMINAL_STATES:
                return record
            if self._superseded(record, attempt):
                return record
            if (
                expect_worker is not None
                and record.get("worker") != expect_worker
            ):
                return record
            entry = {
                "time": now,
                "reason": reason,
                "attempt": record["attempts"],
            }
            if detail:
                entry.update(detail)
            record["requeues"].append(entry)
            if not count_attempt:
                record["attempts"] = max(0, int(record["attempts"]) - 1)
            record["worker"] = None
            record["heartbeat"] = None
            record["stage"] = None
            if record["attempts"] > record["max_retries"]:
                record["state"] = "failed"
                record["finished"] = now
                record["error"] = (
                    f"retries exhausted after {record['attempts']} attempts"
                    f" (last: {reason})"
                )
            else:
                record["state"] = "queued"
            validate_job_record(record)
            self._put(txn, record, "requeue", refund=not count_attempt)
            return record

    def stale_running(self, timeout: float, *,
                      now: float | None = None) -> list[dict]:
        """Running jobs whose heartbeat is older than ``timeout`` seconds."""
        now = time.time() if now is None else float(now)
        with self._read() as con:
            rows = con.execute(
                "SELECT record FROM jobs WHERE state = 'running'"
                " AND heartbeat IS NOT NULL AND heartbeat < ?",
                (now - float(timeout),),
            ).fetchall()
        return [json.loads(r[0]) for r in rows]

    def running(self) -> list[dict]:
        """All currently running jobs."""
        return self.list(state="running")

    # -- reads ---------------------------------------------------------
    def get(self, job_id: str) -> dict:
        """One record by exact id or unique prefix."""
        with self._read() as con:
            row = con.execute(
                "SELECT record FROM jobs WHERE job_id = ?", (job_id,)
            ).fetchone()
            if row is not None:
                return json.loads(row[0])
            rows = con.execute(
                "SELECT record FROM jobs WHERE job_id LIKE ?"
                " ORDER BY created DESC",
                (job_id + "%",),
            ).fetchall()
        if not rows:
            raise JobStoreError(f"no job matching {job_id!r} in {self.root}")
        if len(rows) > 1:
            ids = [json.loads(r[0])["job_id"] for r in rows]
            raise JobStoreError(
                f"ambiguous job id {job_id!r}: matches {', '.join(ids)}"
            )
        return json.loads(rows[0][0])

    def list(self, *, state: str | None = None,
             limit: int | None = None, offset: int = 0) -> list[dict]:
        """Stored records, newest first (optionally one state only).

        ``offset`` skips that many newest records — the pagination
        hook behind ``GET /jobs?offset=N`` (the server clamps ``limit``,
        so clients page instead of asking for everything at once).
        """
        query = "SELECT record FROM jobs"
        params: list = []
        if state is not None:
            query += " WHERE state = ?"
            params.append(state)
        query += " ORDER BY created DESC, job_id DESC"
        if limit is not None or offset:
            query += " LIMIT ? OFFSET ?"
            params.append(-1 if limit is None else int(limit))
            params.append(int(offset))
        with self._read() as con:
            rows = con.execute(query, params).fetchall()
        return [json.loads(r[0]) for r in rows]

    def counts(self) -> dict:
        """``{state: count}`` over every job in the store."""
        with self._read() as con:
            rows = con.execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state"
            ).fetchall()
        return {state: int(n) for state, n in rows}

    def idle(self) -> bool:
        """Whether no job is queued or running."""
        counts = self.counts()
        return not (counts.get("queued") or counts.get("running"))


def job_summary_row(record: dict) -> dict:
    """Compact table row for ``repro jobs list``."""
    result = record.get("result") or {}
    return {
        "job_id": record.get("job_id", ""),
        "state": record.get("state", ""),
        "pri": record.get("priority", 0),
        "attempts": record.get("attempts", 0),
        "stage": record.get("stage") or "",
        "HPWL": round(result.get("hpwl_final", 0.0), 0),
        "legal": "yes" if result.get("legal") else "",
        "degraded": "yes" if result.get("degraded") else "",
        "requeues": len(record.get("requeues", [])),
        "schema": record.get("schema", JOB_SCHEMA_VERSION),
    }
