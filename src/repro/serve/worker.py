"""One serve worker process: claim jobs, run flows, report back.

A worker is a plain OS process running :func:`worker_loop` — a sibling
of :class:`repro.parallel.WorkerPool` workers, but draining a shared
persistent queue instead of executing pipelined tasks.  Each claimed
job builds its design (suite name, inline benchgen spec, or Bookshelf
``.aux``), assembles a per-job :class:`~repro.flow.config.FlowConfig`
(checkpoint dir under the job directory, **pinned** per-job worker
count so the server-level ``REPRO_WORKERS`` can never oversubscribe
cores), and runs :class:`~repro.flow.ntuplace4h.NTUplace4H` under a
dedicated tracer whose sinks provide the serve plumbing:

* a :class:`~repro.obs.bus.JsonlStreamSink` streaming
  ``trace-attempt<N>.jsonl`` into the job directory (tail-f-able live,
  and served by the HTTP ``/jobs/<id>/trace`` endpoint);
* a :class:`~repro.obs.bus.CallbackSink` tracking the innermost open
  span (the job's ``stage`` column) and arming the
  ``serve.worker_exit`` fault point at stage boundaries;
* a beat *thread* stamping the job's heartbeat row at a fixed cadence —
  liveness is decoupled from telemetry volume, so a long silent CG
  solve never looks like a crash.

Cancellation is cooperative and signal-driven: the beat thread (or the
supervisor) notices ``cancel_requested`` and sends the worker
``SIGUSR1``; the handler raises :class:`JobCancelled` — a
``BaseException`` subclass, so it passes straight through the flow's
per-stage ``except Exception`` degradation handlers and unwinds every
``finally`` block on the way out (worker pools shut down, shared-memory
segments unlink; ``tests/test_serve.py`` asserts the no-leak
post-condition).  ``SIGTERM`` is an orderly shutdown: the active job is
requeued with its attempt refunded, then the loop exits.

A worker killed outright (``SIGKILL``, OOM, a ``serve.worker_exit``
fault) simply stops heartbeating; the supervisor requeues its job, and
the next attempt resumes from the last per-stage checkpoint
bit-identically.
"""

from __future__ import annotations

import os
import signal
import threading
import time

from repro.obs import CallbackSink, JsonlStreamSink, Tracer, get_logger, use_tracer
from repro.resilience import DesignValidationError
from repro.resilience.checkpoint import has_checkpoint
from repro.resilience.faults import FaultPlan, check_fault, install_plan, reset_plan
from repro.serve.store import JobStore, JobStoreError

_log = get_logger("serve.worker")

#: Exit code used by the ``serve.worker_exit`` fault point.
FAULT_EXIT_CODE = 86


def _store_write(op, *args, retries: int = 5, delay: float = 0.2, **kwargs):
    """A store mutation with short retries on transient failures.

    Terminal writes (finish/fail/cancel/requeue) must not die to one
    injected ``serve.store_write`` fault or a moment of read-only
    degradation — a computed result would be thrown away and the job
    re-run.  If the store stays broken past the retries the exception
    propagates: the job keeps its stale heartbeat and the supervisor's
    normal machinery requeues it once the store heals.
    """
    for attempt in range(retries):
        try:
            return op(*args, **kwargs)
        except JobStoreError as exc:
            if attempt + 1 >= retries:
                raise
            _log.warning(
                "store write %s failed (%s); retrying",
                getattr(op, "__name__", op), exc,
            )
            time.sleep(delay * (attempt + 1))


class JobCancelled(BaseException):
    """Raised in the worker's main thread to abandon the active job.

    Deliberately a ``BaseException``: the flow's resilience machinery
    catches ``Exception`` to degrade-and-continue, but a cancellation
    must unwind the whole run (closing pools and shared memory via the
    stages' ``finally`` blocks), not be absorbed as a stage fallback.
    """


class WorkerShutdown(BaseException):
    """Raised on SIGTERM: requeue the active job and exit the loop."""


def flow_result_summary(result) -> dict:
    """The job-record ``result`` object for one completed flow run."""
    return {
        "design": result.design_name,
        "hpwl_gp": float(result.hpwl_gp),
        "hpwl_legal": float(result.hpwl_legal),
        "hpwl_final": float(result.hpwl_final),
        "rc": float(result.rc),
        "scaled_hpwl": float(result.scaled_hpwl),
        "total_overflow": float(result.total_overflow),
        "peak_congestion": float(result.peak_congestion),
        "legal": bool(result.legal),
        "degraded": bool(result.degraded),
        "degradation": [dict(d) for d in result.degradation],
        "stage_seconds": {
            k: float(v) for k, v in result.stage_seconds.items()
        },
        "resumed_stages": list(result.resumed_stages),
        "run_id": result.run_id,
    }


def build_design(design_ref: dict):
    """Materialize a job's design from its ``design`` reference."""
    if "suite" in design_ref:
        from repro.benchgen import make_suite_design

        return make_suite_design(design_ref["suite"])
    if "spec" in design_ref:
        from repro.benchgen import BenchmarkSpec, make_benchmark

        return make_benchmark(BenchmarkSpec(**design_ref["spec"]))
    if "aux" in design_ref:
        from repro.io import read_bookshelf

        return read_bookshelf(design_ref["aux"])
    raise ValueError(f"job design names no source: {design_ref!r}")


def build_flow_config(options: dict, *, job_dir: str,
                      default_workers: int = 1,
                      runs_dir: str | None = None):
    """A per-job :class:`FlowConfig` from the job's ``options``.

    The worker count is always **pinned** (``workers_pinned=True``):
    a job that asked for 1 worker runs serial even when the server
    process exports ``REPRO_WORKERS`` — N concurrent jobs silently
    fanning out N×REPRO_WORKERS processes is exactly the
    oversubscription failure this flag exists to prevent.
    """
    from repro.flow import FlowConfig

    cfg = (
        FlowConfig.wirelength_only()
        if options.get("wirelength_only")
        else FlowConfig()
    )
    cfg.run_dp = bool(options.get("run_dp", True))
    for key, value in (options.get("config") or {}).items():
        target = cfg
        parts = str(key).split(".")
        for part in parts[:-1]:
            target = getattr(target, part)
        leaf = parts[-1]
        if not hasattr(target, leaf):
            raise ValueError(f"unknown flow-config override {key!r}")
        current = getattr(target, leaf)
        if isinstance(current, bool):
            value = bool(value)
        elif isinstance(current, int) and not isinstance(value, bool):
            value = int(value)
        elif isinstance(current, float):
            value = float(value)
        setattr(target, leaf, value)
    if options.get("stage_budget"):
        cfg.stage_budget = {
            str(k): float(v) for k, v in options["stage_budget"].items()
        }
    cfg.workers = int(options.get("workers", default_workers))
    cfg.workers_pinned = True
    cfg.checkpoint_dir = os.path.join(job_dir, "checkpoint")
    cfg.runs_dir = runs_dir
    return cfg


class _WorkerState:
    """Mutable flags shared between the signal handlers and the loop."""

    def __init__(self):
        self.active_job: str | None = None
        self.stop = False
        self.cancel_seen = False


def _install_signal_handlers(state: _WorkerState) -> None:
    def on_cancel(signum, frame):  # noqa: ARG001
        if state.active_job is not None:
            state.cancel_seen = True
            raise JobCancelled(state.active_job)

    def on_term(signum, frame):  # noqa: ARG001
        state.stop = True
        if state.active_job is not None:
            raise WorkerShutdown(state.active_job)

    signal.signal(signal.SIGUSR1, on_cancel)
    signal.signal(signal.SIGTERM, on_term)


class _BeatThread(threading.Thread):
    """Heartbeats the active job and watches for cancel / parent death."""

    def __init__(self, store: JobStore, job_id: str, *, attempt: int,
                 interval: float, parent_pid: int | None, stage_cell: dict):
        super().__init__(name=f"serve-beat-{job_id}", daemon=True)
        self._store = store
        self._job_id = job_id
        self._attempt = attempt
        self._interval = max(0.05, float(interval))
        self._parent_pid = parent_pid
        self._stage_cell = stage_cell
        self._done = threading.Event()

    def stop(self) -> None:
        self._done.set()
        if self.is_alive():
            self.join(timeout=2.0)

    def run(self) -> None:
        while not self._done.wait(self._interval):
            try:
                status = self._store.heartbeat(
                    self._job_id, attempt=self._attempt,
                    stage=self._stage_cell.get("stage"),
                )
            except Exception:
                continue  # transient DB contention; liveness resumes next beat
            if self._done.is_set():
                # stop() raced the heartbeat: the worker is finishing the
                # job; a signal now could hit its *next* job.
                return
            if status in ("cancel", "superseded"):
                # Cancel requested — or the store moved past our attempt
                # (we are a zombie: the supervisor requeued the job under
                # someone else).  Either way, abandon the flow.
                os.kill(os.getpid(), signal.SIGUSR1)
                return
            if (
                self._parent_pid is not None
                and os.getppid() != self._parent_pid
            ):
                # The supervisor died; wind the job down for requeue.
                os.kill(os.getpid(), signal.SIGTERM)
                return


def _make_progress_sink(stage_cell: dict):
    """Stage tracking + the ``serve.worker_exit`` fault at stage closes."""

    def on_record(record: dict) -> None:
        rtype = record.get("type")
        if rtype == "span_open":
            stage_cell["stage"] = record.get("path", "")
        elif rtype == "span":
            path = record.get("path", "")
            stage_cell["stage"] = path.rsplit("/", 1)[0] if "/" in path else ""
            if record.get("depth") == 1:
                # Stage boundary: the N-th check is the N-th completed
                # flow stage, so REPRO_FAULTS="serve.worker_exit@2"
                # hard-kills this worker right after the second stage —
                # deterministic crash-requeue coverage.
                if check_fault("serve.worker_exit") is not None:
                    os._exit(FAULT_EXIT_CODE)

    return CallbackSink(on_record, types=("span_open", "span"))


def run_job(store: JobStore, record: dict, *, settings: dict,
            state: _WorkerState | None = None) -> None:
    """Execute one claimed job and write its terminal state."""
    from repro.flow import NTUplace4H

    state = state or _WorkerState()
    job_id = record["job_id"]
    options = dict(record.get("options") or {})
    attempt = int(record["attempts"])
    job_dir = os.path.join(store.root, "jobs", job_id)
    os.makedirs(job_dir, exist_ok=True)
    trace_path = os.path.join(job_dir, f"trace-attempt{attempt}.jsonl")
    checkpoint_dir = os.path.join(job_dir, "checkpoint")
    _store_write(
        store.set_paths,
        job_id,
        attempt=attempt,
        job_dir=job_dir,
        trace_path=trace_path,
        checkpoint_dir=checkpoint_dir,
    )
    stage_cell: dict = {"stage": None}
    beat = _BeatThread(
        store,
        job_id,
        attempt=attempt,
        interval=float(settings.get("heartbeat_interval", 0.5)),
        parent_pid=settings.get("parent_pid"),
        stage_cell=stage_cell,
    )
    tracer = Tracer()
    per_job_faults = options.get("faults")
    if per_job_faults:
        install_plan(FaultPlan.parse(per_job_faults))
    try:
        tracer.add_sink(
            JsonlStreamSink(trace_path, include_open=True),
            meta={"job_id": job_id, "attempt": attempt},
        )
        tracer.add_sink(_make_progress_sink(stage_cell))
        cfg = build_flow_config(
            options,
            job_dir=job_dir,
            default_workers=int(settings.get("default_job_workers", 1)),
            runs_dir=settings.get("runs_dir"),
        )
        design = build_design(record["design"])
        resume_from = None
        if attempt > 1 and has_checkpoint(checkpoint_dir):
            resume_from = checkpoint_dir
        state.active_job = job_id
        state.cancel_seen = False
        beat.start()
        with use_tracer(tracer):
            result = NTUplace4H(cfg).run(
                design,
                route=bool(options.get("route", True)),
                resume_from=resume_from,
            )
        state.active_job = None
        beat.stop()
        tracer.close_sinks()
        _store_write(store.finish, job_id, flow_result_summary(result),
                     attempt=attempt)
    except JobCancelled:
        state.active_job = None
        beat.stop()
        tracer.close_sinks()
        record = _store_write(store.mark_cancelled, job_id, attempt=attempt)
        if record.get("state") == "cancelled":
            _log.info("job %s cancelled", job_id)
        else:
            _log.warning("job %s attempt %d superseded; abandoned",
                         job_id, attempt)
    except WorkerShutdown:
        state.active_job = None
        beat.stop()
        tracer.close_sinks()
        _store_write(store.requeue, job_id, "shutdown",
                     count_attempt=False, attempt=attempt)
        raise
    except (DesignValidationError, ValueError, TypeError) as exc:
        # Deterministic input/config errors: retrying cannot help.
        state.active_job = None
        beat.stop()
        tracer.close_sinks()
        _store_write(store.fail, job_id, f"{type(exc).__name__}: {exc}",
                     attempt=attempt)
        _log.warning("job %s failed: %s", job_id, exc)
    except Exception as exc:
        state.active_job = None
        beat.stop()
        tracer.close_sinks()
        try:
            _store_write(
                store.requeue,
                job_id,
                "worker_error",
                attempt=attempt,
                detail={"error": f"{type(exc).__name__}: {exc}"},
            )
        except JobStoreError as store_exc:
            # The job stays "running" with a stale heartbeat; the
            # supervisor requeues it once the store is back.
            _log.warning("job %s: requeue failed (%s); leaving to the "
                         "supervisor", job_id, store_exc)
        _log.warning("job %s errored (requeued if retries remain): %s",
                     job_id, exc)
    finally:
        state.active_job = None
        if per_job_faults:
            reset_plan()


def worker_loop(root: str, worker_id: int, settings: dict) -> None:
    """Entry point of one serve worker process."""
    store = JobStore(root)
    state = _WorkerState()
    _install_signal_handlers(state)
    poll = max(0.02, float(settings.get("poll_interval", 0.1)))
    parent_pid = settings.get("parent_pid")
    _log.info("serve worker %d up (pid %d)", worker_id, os.getpid())
    while not state.stop:
        if parent_pid is not None and os.getppid() != parent_pid:
            break  # orphaned by a dead supervisor
        try:
            record = store.claim(os.getpid())
        except Exception:
            time.sleep(poll)
            continue
        if record is None:
            time.sleep(poll)
            continue
        try:
            run_job(store, record, settings=settings, state=state)
        except WorkerShutdown:
            break
        except JobCancelled:
            # A cancel signal landed between jobs; nothing to abandon.
            continue
        except JobStoreError as exc:
            # run_job's own store writes gave up (store broken past the
            # retry budget); stay alive and poll — the job is requeued
            # by the supervisor when the store heals.
            _log.warning("job %s: store unavailable (%s)",
                         record.get("job_id"), exc)
            time.sleep(poll)
    _log.info("serve worker %d down", worker_id)
