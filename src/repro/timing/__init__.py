"""Static timing substrate and timing-driven placement hooks.

A deliberately simple but complete STA over the placed netlist: nets are
lumped RC-ish delays proportional to their half-perimeter, cells carry a
unit gate delay, sequential boundaries (terminals and registers) anchor
arrival/required times.  On top of it, :func:`apply_timing_net_weights`
implements the classical timing-driven placement lever — up-weighting
nets by criticality so the analytical placer shortens the critical path.

This mirrors how the NTUplace family's timing-driven variants bolt onto
the same global placer, and gives the library's users a second
optimization axis beside routability.
"""

from repro.timing.graph import TimingGraph
from repro.timing.sta import TimingReport, analyze
from repro.timing.weighting import apply_timing_net_weights, criticality

__all__ = [
    "TimingGraph",
    "TimingReport",
    "analyze",
    "apply_timing_net_weights",
    "criticality",
]
