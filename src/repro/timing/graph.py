"""The timing graph: net-driven DAG extraction from the netlist.

Each net with exactly one OUTPUT pin is a *driven* net: a timing arc
runs from the driver node through the net to every INPUT/BIDIR sink.
Nets without clear direction (all-BIDIR, as in pure-placement
benchmarks) fall back to a deterministic convention — the first pin
drives — so the substrate works on any Bookshelf netlist.  Combinational
cycles are broken by dropping back-edges found during the DFS
levelization (reported, not silently ignored).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db import Design, PinDirection


@dataclass
class TimingArc:
    """One driver->sink arc, annotated with its net."""

    src: int  # node index
    dst: int  # node index
    net: int  # net index


@dataclass
class TimingGraph:
    """Levelized DAG over design nodes."""

    design: Design
    arcs: list = field(default_factory=list)
    fanout: dict = field(default_factory=dict)  # src node -> [arc index]
    fanin: dict = field(default_factory=dict)  # dst node -> [arc index]
    order: list = field(default_factory=list)  # topological node order
    dropped_arcs: int = 0  # back-edges removed to break cycles

    @staticmethod
    def build(design: Design) -> "TimingGraph":
        g = TimingGraph(design=design)
        for net in design.nets:
            if net.degree < 2:
                continue
            drivers = [p for p in net.pins if p.direction is PinDirection.OUTPUT]
            driver = drivers[0] if drivers else net.pins[0]
            for p in net.pins:
                if p is driver:
                    continue
                if p.direction is PinDirection.OUTPUT:
                    continue  # multi-driver nets: keep the first driver only
                arc = TimingArc(src=driver.node, dst=p.node, net=net.index)
                idx = len(g.arcs)
                g.arcs.append(arc)
                g.fanout.setdefault(arc.src, []).append(idx)
                g.fanin.setdefault(arc.dst, []).append(idx)
        g._levelize()
        return g

    # ------------------------------------------------------------------
    def _levelize(self) -> None:
        """Topological order; back-edges (cycles) dropped deterministically."""
        WHITE, GREY, BLACK = 0, 1, 2
        color = {}
        order = []
        drop = set()

        for root in range(len(self.design.nodes)):
            if color.get(root, WHITE) != WHITE:
                continue
            stack = [(root, iter(self.fanout.get(root, [])))]
            color[root] = GREY
            while stack:
                node, it = stack[-1]
                advanced = False
                for arc_idx in it:
                    dst = self.arcs[arc_idx].dst
                    c = color.get(dst, WHITE)
                    if c == GREY:
                        drop.add(arc_idx)  # back-edge: break the cycle
                        continue
                    if c == WHITE:
                        color[dst] = GREY
                        stack.append((dst, iter(self.fanout.get(dst, []))))
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    order.append(node)
                    stack.pop()
        order.reverse()
        if drop:
            self.dropped_arcs = len(drop)
            keep = [i for i in range(len(self.arcs)) if i not in drop]
            remap = {}
            new_arcs = []
            for i in keep:
                remap[i] = len(new_arcs)
                new_arcs.append(self.arcs[i])
            self.arcs = new_arcs
            self.fanout = {}
            self.fanin = {}
            for idx, arc in enumerate(self.arcs):
                self.fanout.setdefault(arc.src, []).append(idx)
                self.fanin.setdefault(arc.dst, []).append(idx)
        self.order = order

    # ------------------------------------------------------------------
    @property
    def primary_inputs(self) -> list:
        """Nodes with no fan-in: fixed terminals and source registers."""
        return [
            n for n in range(len(self.design.nodes)) if n not in self.fanin
        ]

    @property
    def primary_outputs(self) -> list:
        """Nodes with no fan-out."""
        return [
            n for n in range(len(self.design.nodes)) if n not in self.fanout
        ]
