"""Static timing analysis over the placed netlist.

Delay model (placement-stage fidelity, matching what timing-driven
placers optimize):

* **net delay** — proportional to the net's half-perimeter at the
  current placement (a lumped-RC surrogate): ``net_delay = alpha * hpwl``;
* **cell delay** — a fixed gate delay per traversed movable node.

Arrival times propagate forward from primary inputs, required times
backward from primary outputs against the clock period (default: the
longest path, i.e. zero worst slack); slack per arc/net follows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.timing.graph import TimingGraph
from repro.wirelength.hpwl import hpwl_per_net


@dataclass
class TimingReport:
    """Result of one STA pass."""

    arrival: np.ndarray  # per node
    required: np.ndarray  # per node
    net_slack: np.ndarray  # per net (min over its arcs; +inf when no arc)
    critical_path: list  # node indices, input -> output
    wns: float  # worst negative slack (0 when clock = longest path)
    clock_period: float
    dropped_arcs: int = 0

    @property
    def critical_nets(self) -> list:
        """Nets with slack within 10% of the worst, most critical first."""
        finite = np.isfinite(self.net_slack)
        if not finite.any():
            return []
        worst = float(self.net_slack[finite].min())
        span = max(abs(worst), 1e-12)
        out = [
            int(n)
            for n in np.flatnonzero(finite & (self.net_slack <= worst + 0.1 * span))
        ]
        out.sort(key=lambda n: self.net_slack[n])
        return out


def analyze(
    design,
    graph: TimingGraph | None = None,
    *,
    alpha: float = 1.0,
    gate_delay: float = 1.0,
    clock_period: float | None = None,
) -> TimingReport:
    """Run STA at the design's current placement."""
    if graph is None:
        graph = TimingGraph.build(design)
    num_nodes = len(design.nodes)
    num_nets = len(design.nets)
    arrays = design.pin_arrays()
    cx, cy = design.pull_centers()
    net_delay = alpha * hpwl_per_net(arrays, cx, cy)

    arrival = np.zeros(num_nodes)
    for node in graph.order:
        for arc_idx in graph.fanin.get(node, []):
            arc = graph.arcs[arc_idx]
            cand = arrival[arc.src] + gate_delay + net_delay[arc.net]
            if cand > arrival[node]:
                arrival[node] = cand

    longest = float(arrival.max()) if num_nodes else 0.0
    period = longest if clock_period is None else float(clock_period)

    required = np.full(num_nodes, np.inf)
    for node in graph.primary_outputs:
        required[node] = period
    for node in reversed(graph.order):
        for arc_idx in graph.fanout.get(node, []):
            arc = graph.arcs[arc_idx]
            cand = required[arc.dst] - gate_delay - net_delay[arc.net]
            if cand < required[node]:
                required[node] = cand
    # Unconstrained nodes (unreachable from any PO) get zero-slack-free.
    required[np.isinf(required)] = period

    net_slack = np.full(num_nets, np.inf)
    for arc in graph.arcs:
        slack = required[arc.dst] - (arrival[arc.src] + gate_delay + net_delay[arc.net])
        if slack < net_slack[arc.net]:
            net_slack[arc.net] = slack

    slacks = required - arrival
    wns = float(slacks.min()) if num_nodes else 0.0

    critical_path = _trace_critical_path(graph, arrival, net_delay, gate_delay)
    return TimingReport(
        arrival=arrival,
        required=required,
        net_slack=net_slack,
        critical_path=critical_path,
        wns=wns,
        clock_period=period,
        dropped_arcs=graph.dropped_arcs,
    )


def _trace_critical_path(graph, arrival, net_delay, gate_delay) -> list:
    """Follow max-arrival predecessors from the latest node back to a PI."""
    if len(arrival) == 0 or not graph.arcs:
        return []
    node = int(np.argmax(arrival))
    path = [node]
    while True:
        best_prev = None
        for arc_idx in graph.fanin.get(node, []):
            arc = graph.arcs[arc_idx]
            if abs(
                arrival[arc.src] + gate_delay + net_delay[arc.net] - arrival[node]
            ) < 1e-9:
                best_prev = arc.src
                break
        if best_prev is None:
            break
        path.append(best_prev)
        node = best_prev
    path.reverse()
    return path
