"""Timing-driven net weighting.

The classical coupling between STA and analytical placement: each net's
weight grows with its *criticality* (how close its slack is to the worst
slack), so the wirelength objective preferentially shortens timing-
critical wires.  Monotone and bounded, like the congestion weighting it
sits beside.
"""

from __future__ import annotations

import numpy as np

from repro.timing.sta import TimingReport, analyze


def criticality(report: TimingReport) -> np.ndarray:
    """Per-net criticality in [0, 1]: 1 = worst slack, 0 = fully relaxed.

    Nets without timing arcs get 0.
    """
    slack = report.net_slack
    finite = np.isfinite(slack)
    out = np.zeros(len(slack))
    if not finite.any():
        return out
    worst = float(slack[finite].min())
    best = float(slack[finite].max())
    span = max(best - worst, 1e-12)
    out[finite] = np.clip((best - slack[finite]) / span, 0.0, 1.0)
    return out


def apply_timing_net_weights(
    design,
    report: TimingReport | None = None,
    *,
    strength: float = 2.0,
    exponent: float = 2.0,
    max_weight: float = 5.0,
    threshold: float = 0.6,
) -> int:
    """Raise net weights by criticality; returns nets touched.

    Only nets with criticality above ``threshold`` are touched (weighting
    the whole netlist just rescales the objective and inflates HPWL);
    within the critical cone,
    ``new_weight = min(max_weight, weight * (1 + strength * c'^exponent))``
    with ``c'`` the criticality renormalized over the cone.
    """
    if report is None:
        report = analyze(design)
    crit = criticality(report)
    touched = 0
    span = max(1.0 - threshold, 1e-12)
    for net, c in zip(design.nets, crit):
        if c < threshold:
            continue
        cc = (c - threshold) / span
        new_weight = min(max_weight, net.weight * (1.0 + strength * cc**exponent))
        if new_weight > net.weight + 1e-12:
            net.weight = new_weight
            touched += 1
    if touched:
        design._topology_version += 1
    return touched
