"""Lightweight, dependency-free visualization.

ASCII heat maps for terminal output (the benchmark harness prints the
congestion-map figure this way) and an SVG writer for placements and
per-tile maps (what the examples save to disk).
"""

from repro.viz.ascii_art import ascii_heatmap, ascii_histogram
from repro.viz.svg import placement_to_svg, heatmap_to_svg

__all__ = [
    "ascii_heatmap",
    "ascii_histogram",
    "heatmap_to_svg",
    "placement_to_svg",
]
