"""ASCII rendering of 2-D maps and 1-D series."""

from __future__ import annotations

import numpy as np

_SHADES = " .:-=+*#%@"


def ascii_heatmap(
    grid: np.ndarray,
    *,
    vmax: float | None = None,
    width: int = 64,
    legend: bool = True,
) -> str:
    """Render ``grid[ix, iy]`` (x right, y up) as shaded characters.

    Values are scaled to ``vmax`` (default: the grid maximum); the top
    output row is the top of the die.
    """
    if grid.size == 0:
        return "(empty map)"
    data = np.asarray(grid, dtype=float)
    nx, ny = data.shape
    if nx > width:  # downsample columns for narrow terminals
        factor = int(np.ceil(nx / width))
        pad = (-nx) % factor
        padded = np.pad(data, ((0, pad), (0, 0)), constant_values=0)
        data = padded.reshape(-1, factor, ny).max(axis=1)
        nx = data.shape[0]
    top = float(vmax) if vmax else float(data.max())
    if top <= 0:
        top = 1.0
    idx = np.clip((data / top) * (len(_SHADES) - 1), 0, len(_SHADES) - 1).astype(int)
    lines = []
    for j in range(ny - 1, -1, -1):
        lines.append("".join(_SHADES[idx[i, j]] for i in range(nx)))
    if legend:
        lines.append(f"[scale: ' '=0 .. '@'={top:.3g}]")
    return "\n".join(lines)


def ascii_histogram(values, *, bins: int = 10, width: int = 40, label: str = "") -> str:
    """A horizontal-bar histogram of ``values``."""
    vals = np.asarray(list(values), dtype=float)
    if vals.size == 0:
        return "(no data)"
    counts, edges = np.histogram(vals, bins=bins)
    peak = max(int(counts.max()), 1)
    lines = [label] if label else []
    for c, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * c / peak))
        lines.append(f"{lo:10.3g} - {hi:10.3g} | {bar} {c}")
    return "\n".join(lines)
