"""Pure-stdlib SVG writers for placements and tile maps."""

from __future__ import annotations

import numpy as np

from repro.db import NodeKind

_KIND_STYLE = {
    NodeKind.CELL: ("#4f81bd", 0.75),
    NodeKind.MACRO: ("#c0504d", 0.85),
    NodeKind.FIXED: ("#7f7f7f", 0.9),
    NodeKind.TERMINAL: ("#333333", 1.0),
    NodeKind.TERMINAL_NI: ("#333333", 1.0),
    NodeKind.FILLER: ("#dddddd", 0.4),
}


def placement_to_svg(
    design,
    path: str | None = None,
    *,
    canvas: float = 900.0,
    show_fences: bool = True,
) -> str:
    """Render the placement as SVG; optionally write to ``path``.

    Cells are blue, movable macros red, fixed objects grey, fences drawn
    as dashed green outlines.  Returns the SVG text.
    """
    core = design.core
    scale = canvas / max(core.width, core.height)
    w = core.width * scale
    h = core.height * scale

    def sx(x):
        return (x - core.xl) * scale

    def sy(y):  # SVG y grows down
        return h - (y - core.yl) * scale

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0f}" '
        f'height="{h:.0f}" viewBox="0 0 {w:.2f} {h:.2f}">',
        f'<rect x="0" y="0" width="{w:.2f}" height="{h:.2f}" '
        f'fill="#fbfbf6" stroke="black"/>',
    ]
    for node in design.nodes:
        color, opacity = _KIND_STYLE.get(node.kind, ("#000000", 1.0))
        r = node.rect
        if r.area <= 0:
            parts.append(
                f'<circle cx="{sx(r.xl):.2f}" cy="{sy(r.yl):.2f}" r="2" fill="{color}"/>'
            )
            continue
        parts.append(
            f'<rect x="{sx(r.xl):.2f}" y="{sy(r.yh):.2f}" '
            f'width="{r.width * scale:.2f}" height="{r.height * scale:.2f}" '
            f'fill="{color}" fill-opacity="{opacity}" stroke="#222" stroke-width="0.2"/>'
        )
    if show_fences:
        for region in design.regions:
            for r in region.rects:
                parts.append(
                    f'<rect x="{sx(r.xl):.2f}" y="{sy(r.yh):.2f}" '
                    f'width="{r.width * scale:.2f}" height="{r.height * scale:.2f}" '
                    f'fill="none" stroke="#2e8b57" stroke-width="1.5" '
                    f'stroke-dasharray="6,3"/>'
                )
    parts.append("</svg>")
    text = "\n".join(parts)
    if path:
        with open(path, "w") as f:
            f.write(text)
    return text


def heatmap_to_svg(
    grid: np.ndarray,
    path: str | None = None,
    *,
    canvas: float = 600.0,
    vmax: float | None = None,
) -> str:
    """Render a tile map (``grid[ix, iy]``, y up) as an SVG heat map."""
    data = np.asarray(grid, dtype=float)
    nx, ny = data.shape
    top = float(vmax) if vmax else max(float(data.max()), 1e-12)
    cell = canvas / max(nx, ny)
    w, h = nx * cell, ny * cell
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0f}" '
        f'height="{h:.0f}" viewBox="0 0 {w:.2f} {h:.2f}">'
    ]
    for i in range(nx):
        for j in range(ny):
            t = min(data[i, j] / top, 1.0)
            # white -> yellow -> red ramp
            red = 255
            green = int(255 * (1.0 - 0.75 * t))
            blue = int(255 * (1.0 - t))
            parts.append(
                f'<rect x="{i * cell:.2f}" y="{(ny - 1 - j) * cell:.2f}" '
                f'width="{cell:.2f}" height="{cell:.2f}" '
                f'fill="rgb({red},{green},{blue})"/>'
            )
    parts.append("</svg>")
    text = "\n".join(parts)
    if path:
        with open(path, "w") as f:
            f.write(text)
    return text
