"""Wirelength models.

``hpwl`` is the exact half-perimeter wirelength used for reporting.
``LogSumExp`` and ``WeightedAverage`` are the smooth differentiable
surrogates minimized by analytical global placement; the weighted-average
(WA) model is the paper group's contribution — the first model shown to
bound HPWL more tightly than log-sum-exp at equal smoothing.
"""

from repro.wirelength.hpwl import hpwl, hpwl_per_net, net_bounding_boxes
from repro.wirelength.smooth import (
    LogSumExp,
    SmoothWirelength,
    WeightedAverage,
    make_model,
)
from repro.wirelength.check import finite_difference_gradient

__all__ = [
    "LogSumExp",
    "SmoothWirelength",
    "WeightedAverage",
    "finite_difference_gradient",
    "hpwl",
    "hpwl_per_net",
    "make_model",
    "net_bounding_boxes",
]
