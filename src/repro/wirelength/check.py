"""Finite-difference gradient checking for smooth objectives.

Used by the test suite to validate every analytic gradient in the code
base (wirelength models, density potential, fence penalty).
"""

from __future__ import annotations

import numpy as np


def finite_difference_gradient(func, cx, cy, eps: float = 1e-5, indices=None):
    """Central-difference gradient of ``func(cx, cy) -> float``.

    Returns ``(grad_x, grad_y)`` over ``indices`` (default: all entries).
    Intended for tests; cost is two evaluations per coordinate.
    """
    cx = np.array(cx, dtype=float)
    cy = np.array(cy, dtype=float)
    idx = np.arange(len(cx)) if indices is None else np.asarray(indices)
    gx = np.zeros(len(idx))
    gy = np.zeros(len(idx))
    for k, i in enumerate(idx):
        saved = cx[i]
        cx[i] = saved + eps
        fp = func(cx, cy)
        cx[i] = saved - eps
        fm = func(cx, cy)
        cx[i] = saved
        gx[k] = (fp - fm) / (2 * eps)
        saved = cy[i]
        cy[i] = saved + eps
        fp = func(cx, cy)
        cy[i] = saved - eps
        fm = func(cx, cy)
        cy[i] = saved
        gy[k] = (fp - fm) / (2 * eps)
    return gx, gy
