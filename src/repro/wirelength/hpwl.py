"""Exact half-perimeter wirelength (HPWL) over CSR pin arrays."""

from __future__ import annotations

import numpy as np


def _nonempty_starts(net_ptr: np.ndarray):
    counts = np.diff(net_ptr)
    nonempty = counts > 0
    return net_ptr[:-1][nonempty], nonempty


def hpwl_per_net(arrays, cx: np.ndarray, cy: np.ndarray) -> np.ndarray:
    """Unweighted HPWL of every net (zeros for empty nets)."""
    out = np.zeros(arrays.num_nets)
    if arrays.num_pins == 0:
        return out
    px, py = arrays.pin_positions(cx, cy)
    starts, nonempty = _nonempty_starts(arrays.net_ptr)
    if len(starts) == 0:
        return out
    wx = np.maximum.reduceat(px, starts) - np.minimum.reduceat(px, starts)
    wy = np.maximum.reduceat(py, starts) - np.minimum.reduceat(py, starts)
    out[nonempty] = wx + wy
    return out


def hpwl(arrays, cx: np.ndarray, cy: np.ndarray) -> float:
    """Total weighted HPWL."""
    return float(np.sum(arrays.net_weight * hpwl_per_net(arrays, cx, cy)))


def net_bounding_boxes(arrays, cx: np.ndarray, cy: np.ndarray):
    """Per-net bounding boxes ``(xl, yl, xh, yh)``; empty nets collapse to 0.

    Used by RUDY congestion estimation and the router's net ordering.
    """
    n = arrays.num_nets
    xl = np.zeros(n)
    yl = np.zeros(n)
    xh = np.zeros(n)
    yh = np.zeros(n)
    if arrays.num_pins == 0:
        return xl, yl, xh, yh
    px, py = arrays.pin_positions(cx, cy)
    starts, nonempty = _nonempty_starts(arrays.net_ptr)
    if len(starts) == 0:
        return xl, yl, xh, yh
    xl[nonempty] = np.minimum.reduceat(px, starts)
    xh[nonempty] = np.maximum.reduceat(px, starts)
    yl[nonempty] = np.minimum.reduceat(py, starts)
    yh[nonempty] = np.maximum.reduceat(py, starts)
    return xl, yl, xh, yh
