"""Smooth differentiable wirelength models (LSE and WA).

Both models approximate per-net ``max`` and ``min`` of pin coordinates with
smooth functions of a smoothing parameter ``gamma``; smaller ``gamma``
tracks HPWL more tightly but is harder to optimize.

The weighted-average model for the max side of one net is::

    WA_max(x) = sum(x_i * exp(x_i / gamma)) / sum(exp(x_i / gamma))

and analogously with ``exp(-x/gamma)`` for the min side.  Its error against
the true max is bounded by ``gamma * ln(k)`` *from below and above in a
tighter band than log-sum-exp's*, which is the model's theoretical claim —
``benchmarks/bench_fig4_model_error.py`` reproduces the comparison.

All computations are vectorized over the CSR pin table.  Exponents are
shifted by the per-net extremum before exponentiation, so the models are
numerically stable for any coordinate magnitude (the "stable-WA" scheme
from the TSV placement paper in the source listing).

Hot-path layout: the pin-table *compaction* (active nets, per-pin net ids,
reduceat offsets) depends only on the netlist topology, so it is built
once per :class:`~repro.db.design.PinArrays` instance — vectorized, cached
on the arrays object, and shared by every model over that topology.
``rebind`` swaps in a re-oriented pin table without rebuilding it.  Value
and gradient evaluations reuse preallocated per-pin work buffers and
scatter gradients with ``np.bincount`` (bit-identical to ``np.add.at``,
several times faster).  Constructing a model with ``reference=True``
restores the original per-net construction loop and allocating evaluation
path verbatim; ``tests/test_gp_perf_equiv.py`` asserts the two modes agree
to the last bit.
"""

from __future__ import annotations

import numpy as np


class _Compaction:
    """Topology-only pin-table compaction shared across models."""

    __slots__ = ("active", "starts", "weights", "pin_sel", "pin_net", "cstarts")

    def __init__(self, active, starts, weights, pin_sel, pin_net, cstarts):
        self.active = active
        self.starts = starts
        self.weights = weights
        self.pin_sel = pin_sel
        self.pin_net = pin_net
        self.cstarts = cstarts


def _compact_pins_reference(net_ptr, net_weight) -> _Compaction:
    """The original per-net construction loop, kept as the golden path."""
    counts = np.diff(net_ptr)
    active = counts >= 2  # single-pin nets contribute nothing
    starts = net_ptr[:-1][active]
    weights = net_weight[active]
    active_counts = counts[active]
    pin_sel = np.concatenate(
        [
            np.arange(s, s + c)
            for s, c in zip(starts, active_counts)
        ]
    ).astype(np.int64) if len(starts) else np.empty(0, dtype=np.int64)
    pin_net = np.repeat(
        np.arange(len(starts), dtype=np.int64), active_counts
    )
    cstarts = np.concatenate([[0], np.cumsum(active_counts)[:-1]]).astype(
        np.int64
    ) if len(starts) else np.empty(0, dtype=np.int64)
    return _Compaction(active, starts, weights, pin_sel, pin_net, cstarts)


def _compact_pins(net_ptr, net_weight) -> _Compaction:
    """Pure vectorized compaction — no Python per-net loop."""
    counts = np.diff(net_ptr)
    active = counts >= 2
    starts = net_ptr[:-1][active]
    weights = net_weight[active]
    if len(starts) == 0:
        empty = np.empty(0, dtype=np.int64)
        return _Compaction(active, starts, weights, empty, empty.copy(), empty.copy())
    active_counts = counts[active]
    total = int(active_counts.sum())
    cstarts = np.zeros(len(starts), dtype=np.int64)
    np.cumsum(active_counts[:-1], out=cstarts[1:])
    pin_net = np.repeat(np.arange(len(starts), dtype=np.int64), active_counts)
    # pin k of the table is pin (k - cstarts[net]) of its net, which lives
    # at starts[net] + that offset in the original CSR arrays.
    pin_sel = np.arange(total, dtype=np.int64)
    pin_sel -= cstarts[pin_net]
    pin_sel += starts[pin_net]
    return _Compaction(active, starts, weights, pin_sel, pin_net, cstarts)


def compaction_for(arrays, *, reference: bool = False) -> _Compaction:
    """The (cached) compaction of one pin table.

    The optimized build is memoized on the ``PinArrays`` object itself:
    pin tables are immutable once built and replaced wholesale when the
    topology or an orientation changes, so object identity is a safe key.
    """
    if reference:
        return _compact_pins_reference(arrays.net_ptr, arrays.net_weight)
    comp = getattr(arrays, "_smooth_compaction", None)
    if comp is None:
        comp = _compact_pins(arrays.net_ptr, arrays.net_weight)
        try:
            arrays._smooth_compaction = comp
        except AttributeError:  # exotic containers without __dict__
            pass
    return comp


class SmoothWirelength:
    """Base class: holds the CSR pin table and per-pin net expansion."""

    def __init__(self, arrays, num_nodes: int, gamma: float, *, reference: bool = False):
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.num_nodes = int(num_nodes)
        self.gamma = float(gamma)
        self.reference = bool(reference)
        self._bind(arrays, compaction_for(arrays, reference=reference))

    def _bind(self, arrays, comp: _Compaction) -> None:
        self.arrays = arrays
        self._comp = comp
        self._active = comp.active
        self._starts = comp.starts
        self._weights = comp.weights
        self._pin_sel = comp.pin_sel
        self._pin_net = comp.pin_net
        self._cstarts = comp.cstarts
        self._pin_node = arrays.pin_node[self._pin_sel]
        self._pin_dx = arrays.pin_dx[self._pin_sel]
        self._pin_dy = arrays.pin_dy[self._pin_sel]
        # Per-pin net weight, constant over positions.
        self._wpin = self._weights[self._pin_net] if len(self._starts) else None
        self._bufs: dict = {}
        self._probe = None

    def rebind(self, arrays) -> "SmoothWirelength":
        """Adopt a rebuilt pin table without redoing the compaction.

        Orientation passes replace ``pin_dx``/``pin_dy`` but keep the
        netlist topology, so the compaction (and this model's work
        buffers) carry over; only the per-pin gathers are refreshed.
        A table with a different ``net_ptr`` triggers a full rebuild.
        """
        same = arrays.net_ptr is self.arrays.net_ptr or np.array_equal(
            arrays.net_ptr, self.arrays.net_ptr
        )
        comp = self._comp if same else compaction_for(arrays, reference=self.reference)
        self._bind(arrays, comp)
        return self

    def _buf(self, name: str, shape, dtype=np.float64) -> np.ndarray:
        buf = self._bufs.get(name)
        if buf is None or buf.shape != tuple(shape):
            buf = np.empty(shape, dtype=dtype)
            self._bufs[name] = buf
        return buf

    # -- per-axis machinery -------------------------------------------
    def _axis_value_grad(self, p: np.ndarray):
        """Return (per-net value, per-pin gradient) for one axis."""
        raise NotImplementedError

    def _axis_value_fast(self, p: np.ndarray, axis: str):
        """Buffered per-axis value; returns ``(value, state)``.

        ``state`` carries the exponential tables the gradient needs, held
        in axis-suffixed buffers so a later :meth:`_axis_grad_fast` (or
        the other axis's value pass) cannot clobber them.
        """
        raise NotImplementedError

    def _axis_grad_fast(self, state, axis: str):
        """Finish the per-pin gradient from a value pass's ``state``."""
        raise NotImplementedError

    def _axis_value_grad_fast(self, p: np.ndarray, axis: str):
        """Buffered variant; must match ``_axis_value_grad`` bit-for-bit."""
        value, state = self._axis_value_fast(p, axis)
        return value, self._axis_grad_fast(state, axis)

    def value_grad(self, cx: np.ndarray, cy: np.ndarray):
        """Smooth wirelength and its gradient w.r.t. node centres.

        Returns ``(value, grad_x, grad_y)`` with gradients over all
        ``num_nodes`` nodes (fixed nodes included; the caller masks).
        """
        if self.reference:
            return self._value_grad_reference(cx, cy)
        if len(self._starts) == 0:
            return 0.0, np.zeros(self.num_nodes), np.zeros(self.num_nodes)
        n = len(self._pin_node)
        px = self._buf("px", (n,))
        py = self._buf("py", (n,))
        np.take(cx, self._pin_node, out=px)
        px += self._pin_dx
        np.take(cy, self._pin_node, out=py)
        py += self._pin_dy
        vx, gx = self._axis_value_grad_fast(px, "x")
        vy, gy = self._axis_value_grad_fast(py, "y")
        value = float(np.sum(self._weights * (vx + vy)))
        scatter = self._buf("scatter", (n,))
        np.multiply(self._wpin, gx, out=scatter)
        grad_x = np.bincount(self._pin_node, weights=scatter, minlength=self.num_nodes)
        np.multiply(self._wpin, gy, out=scatter)
        grad_y = np.bincount(self._pin_node, weights=scatter, minlength=self.num_nodes)
        return value, grad_x, grad_y

    def _value_grad_reference(self, cx: np.ndarray, cy: np.ndarray):
        """The original allocating evaluation path, verbatim."""
        grad_x = np.zeros(self.num_nodes)
        grad_y = np.zeros(self.num_nodes)
        if len(self._starts) == 0:
            return 0.0, grad_x, grad_y
        px = cx[self._pin_node] + self._pin_dx
        py = cy[self._pin_node] + self._pin_dy
        vx, gx = self._axis_value_grad(px)
        vy, gy = self._axis_value_grad(py)
        value = float(np.sum(self._weights * (vx + vy)))
        wpin = self._weights[self._pin_net]
        np.add.at(grad_x, self._pin_node, wpin * gx)
        np.add.at(grad_y, self._pin_node, wpin * gy)
        return value, grad_x, grad_y

    def value_probe(self, cx: np.ndarray, cy: np.ndarray) -> float:
        """Objective value only, stashing state for :meth:`finish_grad`.

        The optimized half of the line-search value/gradient split:
        rejected trial points skip gradient assembly entirely, while
        :meth:`finish_grad` completes the gradient of the *last probed
        point* from the stashed exponential tables with exactly the ops
        :meth:`value_grad` would have run — the pair is bit-identical to
        one ``value_grad`` call.  In reference mode it simply evaluates
        ``value_grad`` and caches the gradients.
        """
        if self.reference:
            f, gx, gy = self.value_grad(cx, cy)
            self._probe = ("full", gx, gy)
            return f
        if len(self._starts) == 0:
            self._probe = ("empty",)
            return 0.0
        n = len(self._pin_node)
        px = self._buf("px", (n,))
        py = self._buf("py", (n,))
        np.take(cx, self._pin_node, out=px)
        px += self._pin_dx
        np.take(cy, self._pin_node, out=py)
        py += self._pin_dy
        vx, st_x = self._axis_value_fast(px, "x")
        vy, st_y = self._axis_value_fast(py, "y")
        self._probe = ("split", st_x, st_y)
        return float(np.sum(self._weights * (vx + vy)))

    def finish_grad(self):
        """Gradients of the last :meth:`value_probe` point."""
        kind = self._probe[0]
        if kind == "full":
            return self._probe[1], self._probe[2]
        if kind == "empty":
            return np.zeros(self.num_nodes), np.zeros(self.num_nodes)
        _, st_x, st_y = self._probe
        gx = self._axis_grad_fast(st_x, "x")
        gy = self._axis_grad_fast(st_y, "y")
        n = len(self._pin_node)
        scatter = self._buf("scatter", (n,))
        np.multiply(self._wpin, gx, out=scatter)
        grad_x = np.bincount(self._pin_node, weights=scatter, minlength=self.num_nodes)
        np.multiply(self._wpin, gy, out=scatter)
        grad_y = np.bincount(self._pin_node, weights=scatter, minlength=self.num_nodes)
        return grad_x, grad_y

    def value(self, cx: np.ndarray, cy: np.ndarray) -> float:
        if len(self._starts) == 0:
            return 0.0
        px = cx[self._pin_node] + self._pin_dx
        py = cy[self._pin_node] + self._pin_dy
        vx, _ = self._axis_value_grad(px)
        vy, _ = self._axis_value_grad(py)
        return float(np.sum(self._weights * (vx + vy)))

    # -- shared helpers -------------------------------------------------
    def _net_max(self, p):
        return np.maximum.reduceat(p, self._cstarts)

    def _net_min(self, p):
        return np.minimum.reduceat(p, self._cstarts)

    def _net_sum(self, p):
        return np.add.reduceat(p, self._cstarts)



class LogSumExp(SmoothWirelength):
    """The classical log-sum-exp wirelength model (Naylor patent lineage)."""

    def _axis_value_grad(self, p: np.ndarray):
        g = self.gamma
        hi = self._net_max(p)[self._pin_net]
        lo = self._net_min(p)[self._pin_net]
        e_pos = np.exp((p - hi) / g)
        e_neg = np.exp((lo - p) / g)
        s_pos = self._net_sum(e_pos)
        s_neg = self._net_sum(e_neg)
        value = (
            g * (np.log(s_pos) + np.log(s_neg))
            + self._net_max(p)
            - self._net_min(p)
        )
        grad = e_pos / s_pos[self._pin_net] - e_neg / s_neg[self._pin_net]
        return value, grad

    def _axis_value_fast(self, p: np.ndarray, axis: str):
        g = self.gamma
        pin_net = self._pin_net
        n = len(p)
        mx = self._net_max(p)
        mn = self._net_min(p)
        e_pos = self._buf("e_pos_" + axis, (n,))
        e_neg = self._buf("e_neg_" + axis, (n,))
        np.take(mx, pin_net, out=e_pos)        # hi, expanded per pin
        np.subtract(p, e_pos, out=e_pos)
        e_pos /= g
        np.exp(e_pos, out=e_pos)
        np.take(mn, pin_net, out=e_neg)        # lo, expanded per pin
        np.subtract(e_neg, p, out=e_neg)
        e_neg /= g
        np.exp(e_neg, out=e_neg)
        s_pos = self._net_sum(e_pos)
        s_neg = self._net_sum(e_neg)
        value = g * (np.log(s_pos) + np.log(s_neg)) + mx - mn
        return value, (e_pos, e_neg, s_pos, s_neg)

    def _axis_grad_fast(self, state, axis: str):
        e_pos, e_neg, s_pos, s_neg = state
        pin_net = self._pin_net
        n = len(e_pos)
        grad = self._buf("grad_" + axis, (n,))
        t = self._buf("t1", (n,))
        np.take(s_pos, pin_net, out=grad)
        np.divide(e_pos, grad, out=grad)
        np.take(s_neg, pin_net, out=t)
        np.divide(e_neg, t, out=t)
        grad -= t
        return grad


class WeightedAverage(SmoothWirelength):
    """The weighted-average (WA) wirelength model."""

    def _axis_value_grad(self, p: np.ndarray):
        g = self.gamma
        hi = self._net_max(p)[self._pin_net]
        lo = self._net_min(p)[self._pin_net]
        # Max side, shifted by the net max for stability.
        e_pos = np.exp((p - hi) / g)
        s_pos = self._net_sum(e_pos)
        t_pos = self._net_sum(p * e_pos)
        f_pos = t_pos / s_pos
        # Min side, shifted by the net min.
        e_neg = np.exp((lo - p) / g)
        s_neg = self._net_sum(e_neg)
        t_neg = self._net_sum(p * e_neg)
        f_neg = t_neg / s_neg
        value = f_pos - f_neg
        sp = s_pos[self._pin_net]
        tp = t_pos[self._pin_net]
        sn = s_neg[self._pin_net]
        tn = t_neg[self._pin_net]
        grad_pos = e_pos * ((1.0 + p / g) * sp - tp / g) / (sp * sp)
        grad_neg = e_neg * ((1.0 - p / g) * sn + tn / g) / (sn * sn)
        return value, grad_pos - grad_neg

    def _axis_value_fast(self, p: np.ndarray, axis: str):
        g = self.gamma
        pin_net = self._pin_net
        n = len(p)
        e_pos = self._buf("e_pos_" + axis, (n,))
        e_neg = self._buf("e_neg_" + axis, (n,))
        prod = self._buf("prod", (n,))
        # Max side, shifted by the net max for stability.
        np.take(self._net_max(p), pin_net, out=e_pos)
        np.subtract(p, e_pos, out=e_pos)
        e_pos /= g
        np.exp(e_pos, out=e_pos)
        s_pos = self._net_sum(e_pos)
        np.multiply(p, e_pos, out=prod)
        t_pos = self._net_sum(prod)
        f_pos = t_pos / s_pos
        # Min side, shifted by the net min.
        np.take(self._net_min(p), pin_net, out=e_neg)
        np.subtract(e_neg, p, out=e_neg)
        e_neg /= g
        np.exp(e_neg, out=e_neg)
        s_neg = self._net_sum(e_neg)
        np.multiply(p, e_neg, out=prod)
        t_neg = self._net_sum(prod)
        f_neg = t_neg / s_neg
        value = f_pos - f_neg
        return value, (p, e_pos, e_neg, s_pos, t_pos, s_neg, t_neg)

    def _axis_grad_fast(self, state, axis: str):
        p, e_pos, e_neg, s_pos, t_pos, s_neg, t_neg = state
        g = self.gamma
        pin_net = self._pin_net
        n = len(p)
        # grad_pos = e_pos * ((1 + p/g) * sp - tp/g) / (sp * sp)
        grad = self._buf("grad_" + axis, (n,))
        t1 = self._buf("t1", (n,))
        t2 = self._buf("t2", (n,))
        np.divide(p, g, out=grad)
        grad += 1.0
        np.take(s_pos, pin_net, out=t1)        # sp
        grad *= t1
        np.take(t_pos, pin_net, out=t2)        # tp
        t2 /= g
        grad -= t2
        grad *= e_pos
        np.multiply(t1, t1, out=t1)            # sp * sp
        grad /= t1
        # grad_neg = e_neg * ((1 - p/g) * sn + tn/g) / (sn * sn)
        neg = self._buf("neg", (n,))
        np.divide(p, g, out=neg)
        np.subtract(1.0, neg, out=neg)
        np.take(s_neg, pin_net, out=t1)        # sn
        neg *= t1
        np.take(t_neg, pin_net, out=t2)        # tn
        t2 /= g
        neg += t2
        neg *= e_neg
        np.multiply(t1, t1, out=t1)            # sn * sn
        neg /= t1
        grad -= neg
        return grad


def make_model(
    kind: str, arrays, num_nodes: int, gamma: float, *, reference: bool = False
) -> SmoothWirelength:
    """Factory: ``"wa"`` (default placer choice) or ``"lse"``."""
    kind = kind.lower()
    if kind == "wa":
        return WeightedAverage(arrays, num_nodes, gamma, reference=reference)
    if kind == "lse":
        return LogSumExp(arrays, num_nodes, gamma, reference=reference)
    raise ValueError(f"unknown wirelength model {kind!r}")
