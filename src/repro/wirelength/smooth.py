"""Smooth differentiable wirelength models (LSE and WA).

Both models approximate per-net ``max`` and ``min`` of pin coordinates with
smooth functions of a smoothing parameter ``gamma``; smaller ``gamma``
tracks HPWL more tightly but is harder to optimize.

The weighted-average model for the max side of one net is::

    WA_max(x) = sum(x_i * exp(x_i / gamma)) / sum(exp(x_i / gamma))

and analogously with ``exp(-x/gamma)`` for the min side.  Its error against
the true max is bounded by ``gamma * ln(k)`` *from below and above in a
tighter band than log-sum-exp's*, which is the model's theoretical claim —
``benchmarks/bench_fig4_model_error.py`` reproduces the comparison.

All computations are vectorized over the CSR pin table.  Exponents are
shifted by the per-net extremum before exponentiation, so the models are
numerically stable for any coordinate magnitude (the "stable-WA" scheme
from the TSV placement paper in the source listing).
"""

from __future__ import annotations

import numpy as np


class SmoothWirelength:
    """Base class: holds the CSR pin table and per-pin net expansion."""

    def __init__(self, arrays, num_nodes: int, gamma: float):
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.arrays = arrays
        self.num_nodes = int(num_nodes)
        self.gamma = float(gamma)
        counts = np.diff(arrays.net_ptr)
        self._active = counts >= 2  # single-pin nets contribute nothing
        self._starts = arrays.net_ptr[:-1][self._active]
        self._weights = arrays.net_weight[self._active]
        # Map each pin of an active net back to its (compacted) net id.
        active_counts = counts[self._active]
        self._pin_sel = np.concatenate(
            [
                np.arange(s, s + c)
                for s, c in zip(self._starts, active_counts)
            ]
        ).astype(np.int64) if len(self._starts) else np.empty(0, dtype=np.int64)
        self._pin_net = np.repeat(
            np.arange(len(self._starts), dtype=np.int64), active_counts
        )
        # reduceat indices over the *compacted* pin arrays
        self._cstarts = np.concatenate([[0], np.cumsum(active_counts)[:-1]]).astype(
            np.int64
        ) if len(self._starts) else np.empty(0, dtype=np.int64)
        self._pin_node = arrays.pin_node[self._pin_sel]
        self._pin_dx = arrays.pin_dx[self._pin_sel]
        self._pin_dy = arrays.pin_dy[self._pin_sel]

    # -- per-axis machinery -------------------------------------------
    def _axis_value_grad(self, p: np.ndarray):
        """Return (per-net value, per-pin gradient) for one axis."""
        raise NotImplementedError

    def value_grad(self, cx: np.ndarray, cy: np.ndarray):
        """Smooth wirelength and its gradient w.r.t. node centres.

        Returns ``(value, grad_x, grad_y)`` with gradients over all
        ``num_nodes`` nodes (fixed nodes included; the caller masks).
        """
        grad_x = np.zeros(self.num_nodes)
        grad_y = np.zeros(self.num_nodes)
        if len(self._starts) == 0:
            return 0.0, grad_x, grad_y
        px = cx[self._pin_node] + self._pin_dx
        py = cy[self._pin_node] + self._pin_dy
        vx, gx = self._axis_value_grad(px)
        vy, gy = self._axis_value_grad(py)
        value = float(np.sum(self._weights * (vx + vy)))
        wpin = self._weights[self._pin_net]
        np.add.at(grad_x, self._pin_node, wpin * gx)
        np.add.at(grad_y, self._pin_node, wpin * gy)
        return value, grad_x, grad_y

    def value(self, cx: np.ndarray, cy: np.ndarray) -> float:
        if len(self._starts) == 0:
            return 0.0
        px = cx[self._pin_node] + self._pin_dx
        py = cy[self._pin_node] + self._pin_dy
        vx, _ = self._axis_value_grad(px)
        vy, _ = self._axis_value_grad(py)
        return float(np.sum(self._weights * (vx + vy)))

    # -- shared helpers -------------------------------------------------
    def _net_max(self, p):
        return np.maximum.reduceat(p, self._cstarts)

    def _net_min(self, p):
        return np.minimum.reduceat(p, self._cstarts)

    def _net_sum(self, p):
        return np.add.reduceat(p, self._cstarts)


class LogSumExp(SmoothWirelength):
    """The classical log-sum-exp wirelength model (Naylor patent lineage)."""

    def _axis_value_grad(self, p: np.ndarray):
        g = self.gamma
        hi = self._net_max(p)[self._pin_net]
        lo = self._net_min(p)[self._pin_net]
        e_pos = np.exp((p - hi) / g)
        e_neg = np.exp((lo - p) / g)
        s_pos = self._net_sum(e_pos)
        s_neg = self._net_sum(e_neg)
        value = (
            g * (np.log(s_pos) + np.log(s_neg))
            + self._net_max(p)
            - self._net_min(p)
        )
        grad = e_pos / s_pos[self._pin_net] - e_neg / s_neg[self._pin_net]
        return value, grad


class WeightedAverage(SmoothWirelength):
    """The weighted-average (WA) wirelength model."""

    def _axis_value_grad(self, p: np.ndarray):
        g = self.gamma
        hi = self._net_max(p)[self._pin_net]
        lo = self._net_min(p)[self._pin_net]
        # Max side, shifted by the net max for stability.
        e_pos = np.exp((p - hi) / g)
        s_pos = self._net_sum(e_pos)
        t_pos = self._net_sum(p * e_pos)
        f_pos = t_pos / s_pos
        # Min side, shifted by the net min.
        e_neg = np.exp((lo - p) / g)
        s_neg = self._net_sum(e_neg)
        t_neg = self._net_sum(p * e_neg)
        f_neg = t_neg / s_neg
        value = f_pos - f_neg
        sp = s_pos[self._pin_net]
        tp = t_pos[self._pin_net]
        sn = s_neg[self._pin_net]
        tn = t_neg[self._pin_net]
        grad_pos = e_pos * ((1.0 + p / g) * sp - tp / g) / (sp * sp)
        grad_neg = e_neg * ((1.0 - p / g) * sn + tn / g) / (sn * sn)
        return value, grad_pos - grad_neg


def make_model(kind: str, arrays, num_nodes: int, gamma: float) -> SmoothWirelength:
    """Factory: ``"wa"`` (default placer choice) or ``"lse"``."""
    kind = kind.lower()
    if kind == "wa":
        return WeightedAverage(arrays, num_nodes, gamma)
    if kind == "lse":
        return LogSumExp(arrays, num_nodes, gamma)
    raise ValueError(f"unknown wirelength model {kind!r}")
