"""Test-suite configuration.

Hypothesis runs derandomized with no deadline: property tests explore
the same example sequence on every run, so CI results are reproducible
and slow numeric paths never flake on timing.
"""

from hypothesis import settings

settings.register_profile("repro", deadline=None, derandomize=True)
settings.load_profile("repro")
