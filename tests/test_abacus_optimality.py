"""Optimality-flavoured tests for Abacus single-row placement.

Abacus minimizes total squared displacement for a fixed left-to-right
order.  For small rows we can check that claim against dense quadratic
optimization (projected coordinate descent) and against naive greedy
packing.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Design, Node, Row
from repro.legal import SubRowMap, abacus_refine, check_legal


def row_design(widths):
    d = Design("a")
    d.add_row(Row(y=0.0, height=1.0, site_width=0.01, x_min=0.0, num_sites=10_000))
    for k, w in enumerate(widths):
        d.add_node(Node(f"c{k}", float(w), 1.0, x=0.0, y=0.0))
    return d


def place_with_abacus(widths, targets):
    d = row_design(widths)
    sm = SubRowMap(d)
    sr = sm.subrows[0]
    order = np.argsort(targets)
    for idx in order:
        d.nodes[int(idx)].x = float(targets[int(idx)])
        sr.cells.append(int(idx))
    abacus_refine(d, sm, {i: float(targets[i]) for i in range(len(widths))})
    return d, sm


def quadratic_cost(d, targets):
    return sum(
        (d.nodes[i].x - targets[i]) ** 2 for i in range(len(targets))
    )


def reference_optimum(widths, targets, iters=4000):
    """Projected coordinate descent on the ordered-packing QP."""
    order = np.argsort(targets)
    w = np.array([widths[i] for i in order], dtype=float)
    t = np.array([targets[i] for i in order], dtype=float)
    x = np.maximum.accumulate(t)  # feasible start respecting order
    for k in range(1, len(x)):
        x[k] = max(x[k], x[k - 1] + w[k - 1])
    for _ in range(iters):
        for k in range(len(x)):
            lo = x[k - 1] + w[k - 1] if k > 0 else 0.0
            hi = x[k + 1] - w[k] if k + 1 < len(x) else 95.0
            x[k] = min(max(t[k], lo), hi)
    cost = float(((x - t) ** 2).sum())
    return cost


class TestAbacusQuality:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.floats(0.5, 3.0), min_size=2, max_size=6),
        st.data(),
    )
    def test_near_reference_optimum(self, widths, data):
        targets = [
            data.draw(st.floats(0.0, 20.0)) for _ in widths
        ]
        d, sm = place_with_abacus(widths, targets)
        got = quadratic_cost(d, targets)
        ref = reference_optimum(widths, targets)
        # site snapping costs a little; allow a site-quantization margin
        n = len(widths)
        assert got <= ref + 0.05 * n + 1e-6

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(0.5, 2.0), min_size=2, max_size=8), st.data())
    def test_always_legal(self, widths, data):
        targets = [data.draw(st.floats(0.0, 20.0)) for _ in widths]
        d, _ = place_with_abacus(widths, targets)
        # pairwise non-overlap in the row
        spans = sorted(
            (n.x, n.x + n.placed_width) for n in d.nodes if n.is_movable
        )
        for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
            assert a1 <= b0 + 1e-6

    def test_overfull_cluster_clamps_left(self):
        # all targets at the far right, total width forces a left shift
        d, sm = place_with_abacus([2.0, 2.0, 2.0], [95.0, 95.0, 95.0])
        xs = sorted(n.x for n in d.nodes if n.is_movable)
        sr = sm.subrows[0]
        assert xs[0] >= sr.x_min - 1e-9
        assert xs[-1] + 2.0 <= sr.x_max + 1e-9
