"""Tests for placement-quality analytics."""

import numpy as np
import pytest

from repro.analysis import (
    displacement_stats,
    net_length_stats,
    quality_summary,
    utilization_profile,
)
from repro.benchgen import BenchmarkSpec, make_benchmark
from repro.db import Design, Net, Node, Pin
from repro.geometry import Rect
from repro.gp import initial_placement


@pytest.fixture
def design():
    d = make_benchmark(
        BenchmarkSpec(name="q", num_cells=150, num_macros=1, num_fixed_macros=1,
                      num_terminals=4, cap_factor=3.0, seed=29)
    )
    initial_placement(d)
    return d


class TestNetLengthStats:
    def test_fields(self, design):
        stats = net_length_stats(design)
        assert stats["count"] > 0
        assert stats["median"] <= stats["p90"] <= stats["p99"] <= stats["max"]
        assert stats["total"] == pytest.approx(design.hpwl(), rel=1e-6)

    def test_empty_design(self):
        d = Design("e", core=Rect(0, 0, 10, 10))
        assert net_length_stats(d) == {"count": 0}

    def test_known_values(self):
        d = Design("k", core=Rect(0, 0, 10, 10))
        a = d.add_node(Node("a", 1, 1, x=0, y=0))
        b = d.add_node(Node("b", 1, 1, x=3, y=4))
        d.add_net(Net("n", pins=[Pin(node=0), Pin(node=1)]))
        stats = net_length_stats(d)
        assert stats["mean"] == pytest.approx(7.0)


class TestDisplacement:
    def test_zero_for_identity(self, design):
        snap = design.clone_placement()
        ref = {i: (x, y) for i, (x, y, _) in snap.items()}
        stats = displacement_stats(design, ref)
        assert stats["total"] == 0.0

    def test_tracks_moves(self, design):
        ref = {n.index: (n.x, n.y) for n in design.nodes}
        design.nodes[0].x += 2.0
        design.nodes[0].y += 1.0
        stats = displacement_stats(design, ref)
        assert stats["max"] == pytest.approx(3.0)

    def test_empty_reference(self, design):
        assert displacement_stats(design, {}) == {"count": 0}


class TestUtilizationProfile:
    def test_shape_and_range(self, design):
        prof = utilization_profile(design, bands=8)
        assert prof.shape == (8,)
        assert (prof >= 0).all()

    def test_axis_validation(self, design):
        with pytest.raises(ValueError):
            utilization_profile(design, axis="z")

    def test_concentration_detected(self):
        d = Design("c", core=Rect(0, 0, 10, 10))
        for i in range(5):
            d.add_node(Node(f"c{i}", 1, 1, x=float(i), y=9.0))
        prof = utilization_profile(d, bands=10)
        assert prof[9] > prof[0]


class TestSummary:
    def test_basic(self, design):
        s = quality_summary(design)
        assert s.hpwl == pytest.approx(design.hpwl())
        assert s.rc is None
        row = s.as_row()
        assert "HPWL" in row and "overflow" in row

    def test_with_route_and_timing(self, design):
        s = quality_summary(design, route=True, timing=True)
        assert s.rc is not None and s.rc >= 0
        assert s.longest_path is not None and s.longest_path > 0
        row = s.as_row()
        assert "RC" in row and "longest_path" in row
