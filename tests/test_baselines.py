"""Tests for the baseline placers."""

import numpy as np
import pytest

from repro.baselines import QuadraticConfig, QuadraticPlacer, random_placement, run_baseline_flow
from repro.benchgen import BenchmarkSpec, make_benchmark
from repro.db import NodeKind


def bench(seed=41, **kw):
    base = dict(
        name="b", num_cells=250, num_macros=2, num_fixed_macros=1,
        num_terminals=12, utilization=0.55, seed=seed,
    )
    base.update(kw)
    return make_benchmark(BenchmarkSpec(**base))


class TestRandom:
    def test_inside_core(self):
        d = bench()
        random_placement(d, seed=1)
        for n in d.nodes:
            if n.is_movable:
                assert d.core.contains_rect(n.rect)

    def test_fenced_near_fence(self):
        d = bench(num_fences=1, fence_level=1, num_cells=300)
        random_placement(d, seed=1)
        for n in d.nodes:
            if n.region is not None and n.is_movable:
                box = d.regions[n.region].bounding_box
                assert box.inflated(n.placed_width).contains_point(n.rect.center)

    def test_deterministic(self):
        d1, d2 = bench(), bench()
        random_placement(d1, seed=7)
        random_placement(d2, seed=7)
        assert d1.hpwl() == d2.hpwl()


class TestQuadratic:
    def test_beats_random(self):
        d = bench(seed=42)
        QuadraticPlacer().place(d)
        quad = d.hpwl()
        d2 = bench(seed=42)
        random_placement(d2, seed=0)
        assert quad < d2.hpwl()

    def test_spreads_cells(self):
        from repro.density import density_overflow

        d = bench(seed=43)
        QuadraticPlacer().place(d)
        assert density_overflow(d, nx=16, ny=16) < 0.6

    def test_hpwl_history_recorded(self):
        d = bench(seed=44)
        info = QuadraticPlacer(QuadraticConfig(iterations=4)).place(d)
        assert info["iterations"] == 4
        assert len(info["hpwl"]) == 4

    def test_fixed_untouched(self):
        d = bench(seed=45)
        before = {n.index: (n.x, n.y) for n in d.nodes if not n.is_movable}
        QuadraticPlacer().place(d)
        for idx, (x, y) in before.items():
            assert (d.nodes[idx].x, d.nodes[idx].y) == (x, y)

    def test_empty_design(self):
        from repro.db import Design
        from repro.geometry import Rect

        d = Design("e", core=Rect(0, 0, 10, 10))
        info = QuadraticPlacer().place(d)
        assert info["iterations"] == 0


class TestBaselineFlow:
    def test_quadratic_flow_end_to_end(self):
        d = bench(seed=46)
        res = run_baseline_flow(d, "quadratic", run_dp=False, route=True)
        assert res.legal
        assert res.rc >= 0
        assert res.hpwl_final > 0

    def test_random_flow_end_to_end(self):
        d = bench(seed=47)
        res = run_baseline_flow(d, "random", run_dp=False, route=False)
        assert res.legal

    def test_unknown_baseline_raises(self):
        d = bench(seed=48)
        with pytest.raises(ValueError):
            run_baseline_flow(d, "martian")

    def test_quadratic_beats_random_flow(self):
        dq = bench(seed=49)
        rq = run_baseline_flow(dq, "quadratic", run_dp=False, route=False)
        dr = bench(seed=49)
        rr = run_baseline_flow(dr, "random", run_dp=False, route=False)
        assert rq.hpwl_final < rr.hpwl_final
