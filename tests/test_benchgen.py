"""Tests for the synthetic benchmark generator."""

import numpy as np
import pytest

from repro.benchgen import (
    BenchmarkSpec,
    SUITE,
    make_benchmark,
    make_suite_design,
    suite_specs,
)
from repro.benchgen.rent import (
    assign_cells_to_leaves,
    leaf_module_path,
    sample_net_degrees,
    sample_net_levels,
    subtree_cells,
)
from repro.db import NodeKind, compute_stats


def small_spec(**kw):
    base = dict(
        name="g", num_cells=300, num_macros=3, num_fixed_macros=1,
        num_terminals=12, seed=5,
    )
    base.update(kw)
    return BenchmarkSpec(**base)


class TestRentMachinery:
    def test_leaf_assignment_contiguous(self):
        leaf_of, members = assign_cells_to_leaves(100, 4, 2)
        assert len(members) == 16
        assert (np.diff(leaf_of) >= 0).all()
        assert sum(len(m) for m in members) == 100

    def test_leaf_module_path(self):
        assert leaf_module_path(0, 4, 2) == "top/m0/m0"
        assert leaf_module_path(5, 4, 2) == "top/m1/m1"

    def test_levels_distribution(self):
        rng = np.random.default_rng(0)
        levels = sample_net_levels(rng, 5000, depth=3, locality=0.8)
        shares = [(levels == l).mean() for l in range(4)]
        # deeper (more local) levels are monotonically more likely
        assert shares == sorted(shares)
        assert shares[3] > 0.25
        assert levels.min() >= 0 and levels.max() <= 3

    def test_levels_validates(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_net_levels(rng, 10, 2, 1.5)

    def test_degrees_range(self):
        rng = np.random.default_rng(0)
        deg = sample_net_degrees(rng, 5000, avg_degree=3.6, max_degree=24)
        assert deg.min() >= 2 and deg.max() <= 24
        assert 2.5 < deg.mean() < 5.0

    def test_subtree_cells(self):
        _, members = assign_cells_to_leaves(64, 4, 2)
        all_cells = subtree_cells(members, leaf=5, level=0, branching=4, depth=2)
        assert len(all_cells) == 64
        leaf_cells = subtree_cells(members, leaf=5, level=2, branching=4, depth=2)
        assert np.array_equal(leaf_cells, members[5])


class TestGenerator:
    def test_deterministic(self):
        d1 = make_benchmark(small_spec())
        d2 = make_benchmark(small_spec())
        assert d1.hpwl() == d2.hpwl()
        assert [n.name for n in d1.nodes] == [n.name for n in d2.nodes]

    def test_counts_match_spec(self):
        spec = small_spec()
        d = make_benchmark(spec)
        stats = compute_stats(d)
        assert stats.num_cells == spec.num_cells
        assert stats.num_macros == spec.num_macros
        assert stats.num_fixed == spec.num_fixed_macros
        assert stats.num_terminals == spec.num_terminals

    def test_validates(self):
        d = make_benchmark(small_spec())
        assert d.validate() == []

    def test_macro_area_fraction(self):
        spec = small_spec(macro_area_fraction=0.3)
        d = make_benchmark(spec)
        stats = compute_stats(d)
        assert stats.macro_area_fraction == pytest.approx(0.3, abs=0.08)

    def test_utilization_near_target(self):
        spec = small_spec(utilization=0.6)
        d = make_benchmark(spec)
        assert d.utilization() == pytest.approx(0.6, abs=0.1)

    def test_rows_cover_core(self):
        d = make_benchmark(small_spec())
        assert len(d.rows) > 0
        assert d.core.height == pytest.approx(len(d.rows) * d.row_height)

    def test_terminals_on_boundary(self):
        d = make_benchmark(small_spec())
        core = d.core
        for n in d.nodes:
            if n.kind is NodeKind.TERMINAL_NI:
                on_edge = (
                    abs(n.x - core.xl) < 1e-6
                    or abs(n.x - core.xh) < 1e-6
                    or abs(n.y - core.yl) < 1e-6
                    or abs(n.y - core.yh) < 1e-6
                )
                assert on_edge

    def test_cells_have_modules(self):
        d = make_benchmark(small_spec())
        for n in d.nodes:
            if n.kind is NodeKind.CELL:
                assert n.module and n.module.startswith("top")

    def test_routing_spec_present(self):
        spec = small_spec(route_tiles=16)
        d = make_benchmark(spec)
        assert d.routing.grid.nx == 16

    def test_congested_band_reduces_capacity(self):
        d0 = make_benchmark(small_spec(congested_band=0.0))
        d1 = make_benchmark(small_spec(congested_band=0.5))
        assert d1.routing.hcap.min() < d0.routing.hcap.min()

    def test_fences_disjoint_and_snapped(self):
        spec = small_spec(num_fences=3, fence_level=1, num_cells=600)
        d = make_benchmark(spec)
        rects = [r for region in d.regions for r in region.rects]
        assert len(rects) >= 1
        for i in range(len(rects)):
            for j in range(i + 1, len(rects)):
                assert not rects[i].intersects(rects[j])
            assert rects[i].yl == pytest.approx(round(rects[i].yl))
            assert rects[i].yh == pytest.approx(round(rects[i].yh))

    def test_fence_members_assigned(self):
        spec = small_spec(num_fences=1, fence_level=1, num_cells=400)
        d = make_benchmark(spec)
        fenced = [n for n in d.nodes if n.region is not None]
        assert fenced
        # all fenced cells share the fenced module prefix
        module = d.hierarchy.modules()
        for n in fenced:
            if n.kind is NodeKind.CELL:
                assert n.module is not None

    def test_fence_capacity_sufficient(self):
        spec = small_spec(num_fences=2, fence_level=1, num_cells=600)
        d = make_benchmark(spec)
        for region in d.regions:
            demand = sum(
                d.nodes[i].area
                for i in range(len(d.nodes))
                if d.nodes[i].region == region.index
            )
            assert demand <= region.area + 1e-6


class TestSuite:
    def test_suite_names(self):
        assert sorted(SUITE) == ["rh01", "rh02", "rh03", "rh04", "rh05", "rh06"]

    def test_suite_specs_order(self):
        specs = suite_specs(["rh02", "rh01"])
        assert [s.name for s in specs] == ["rh02", "rh01"]

    def test_make_suite_design_small(self):
        d = make_suite_design("rh01")
        assert d.name == "rh01"
        assert d.validate() == []
