"""Checkpoint/resume tests: per-stage persistence and bit-identical resume."""

import json
import os

import pytest

from repro.benchgen import BenchmarkSpec, make_benchmark
from repro.dp import DPConfig
from repro.flow import FlowConfig, NTUplace4H
from repro.flow.ntuplace4h import FLOW_STAGES
from repro.legal import Legalizer
from repro.resilience import (
    CHECKPOINT_VERSION,
    CheckpointError,
    has_checkpoint,
    inject,
    load_checkpoint,
    reset_plan,
)

SCALARS = (
    "hpwl_gp", "hpwl_legal", "hpwl_final", "rc", "scaled_hpwl",
    "total_overflow", "peak_congestion", "legal",
)


def bench(seed=81):
    return make_benchmark(
        BenchmarkSpec(
            name="c", num_cells=200, num_macros=2, num_fixed_macros=1,
            num_terminals=10, utilization=0.55, cap_factor=4.0, seed=seed,
        )
    )


def fast_flow(checkpoint_dir=None) -> FlowConfig:
    cfg = FlowConfig()
    cfg.gp.clustering = False
    cfg.gp.max_outer_iterations = 12
    cfg.gp.inner_iterations = 14
    cfg.refine_outer_iterations = 5
    cfg.dp = DPConfig(rounds=1, congestion_aware=True)
    cfg.checkpoint_dir = checkpoint_dir
    return cfg


def placement_state(design):
    return [(n.name, n.x, n.y, n.orientation) for n in design.nodes]


@pytest.fixture(autouse=True)
def _isolated_faults():
    yield
    reset_plan()


class TestCheckpointFile:
    def test_written_after_every_stage(self, tmp_path):
        ckpt_dir = str(tmp_path / "ck")
        d = bench()
        NTUplace4H(fast_flow(ckpt_dir)).run(d)
        assert has_checkpoint(ckpt_dir)
        ckpt = load_checkpoint(ckpt_dir)
        assert ckpt.version == CHECKPOINT_VERSION
        assert tuple(ckpt.completed) == FLOW_STAGES
        assert len(ckpt.positions) == d.num_nodes
        assert ckpt.rng  # both RNG streams captured

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(str(tmp_path / "nope"))

    def test_version_mismatch_rejected(self, tmp_path):
        ckpt_dir = str(tmp_path / "ck")
        d = bench()
        NTUplace4H(fast_flow(ckpt_dir)).run(d, route=False)
        path = os.path.join(ckpt_dir, "checkpoint.json")
        data = json.load(open(path))
        data["version"] = 999
        json.dump(data, open(path, "w"))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(ckpt_dir)

    def test_apply_to_mismatched_design_rejected(self, tmp_path):
        ckpt_dir = str(tmp_path / "ck")
        NTUplace4H(fast_flow(ckpt_dir)).run(bench(), route=False)
        other = make_benchmark(
            BenchmarkSpec(name="other", num_cells=50, num_macros=1, seed=9)
        )
        with pytest.raises(CheckpointError):
            load_checkpoint(ckpt_dir).apply(other)

    def test_io_error_degrades_but_flow_completes(self, tmp_path):
        ckpt_dir = str(tmp_path / "ck")
        d = bench()
        with inject("checkpoint.io_error"):
            result = NTUplace4H(fast_flow(ckpt_dir)).run(d, route=False)
        assert result.degraded
        assert ("checkpoint", "io_error") in [
            (e["stage"], e["reason"]) for e in result.degradation
        ]
        assert result.legal  # the flow itself was unaffected


class TestResume:
    def test_kill_after_gp_then_resume_bit_identical(self, tmp_path, monkeypatch):
        # Reference: one uninterrupted run.
        ref_design = bench()
        ref_result = NTUplace4H(fast_flow()).run(ref_design)
        ref_state = placement_state(ref_design)

        # Victim: same design, checkpointing on, "process dies" in
        # legalization.  KeyboardInterrupt models a kill — it must NOT
        # be swallowed by the degrade-don't-crash machinery.
        ckpt_dir = str(tmp_path / "ck")
        victim = bench()

        def killed(self, design):
            raise KeyboardInterrupt

        with monkeypatch.context() as mp:
            mp.setattr(Legalizer, "legalize", killed)
            with pytest.raises(KeyboardInterrupt):
                NTUplace4H(fast_flow(ckpt_dir)).run(victim)

        ckpt = load_checkpoint(ckpt_dir)
        assert ckpt.completed == ["gp", "macro_legal_refine"]

        # Resume on a freshly generated design, as a new process would.
        resumed = bench()
        result = NTUplace4H(fast_flow(ckpt_dir)).run(
            resumed, resume_from=ckpt_dir
        )
        assert result.resumed_stages == ["gp", "macro_legal_refine"]
        assert placement_state(resumed) == ref_state
        for name in SCALARS:
            assert getattr(result, name) == getattr(ref_result, name), name
        assert not result.degraded

    def test_resume_from_complete_checkpoint_skips_everything(self, tmp_path):
        ckpt_dir = str(tmp_path / "ck")
        d = bench()
        first = NTUplace4H(fast_flow(ckpt_dir)).run(d)
        done_state = placement_state(d)

        again = bench()
        result = NTUplace4H(fast_flow()).run(again, resume_from=ckpt_dir)
        assert tuple(result.resumed_stages) == FLOW_STAGES
        assert placement_state(again) == done_state
        for name in SCALARS:
            assert getattr(result, name) == getattr(first, name), name
        # Restored telemetry (stage timings of the original run) survives.
        assert set(first.stage_seconds) == set(result.telemetry["stage_seconds"])

    def test_resume_restores_net_weights(self, tmp_path):
        # Congestion-driven net weighting mutates live weights mid-flow;
        # the checkpoint must carry them so later stages see the same
        # objective, while HPWL scoring keeps the original weights.
        ckpt_dir = str(tmp_path / "ck")
        cfg = fast_flow(ckpt_dir)
        cfg.net_weighting = True
        d = bench()
        first = NTUplace4H(cfg).run(d)
        weights_after = [net.weight for net in d.nets]

        again = bench()
        cfg2 = fast_flow(ckpt_dir)
        cfg2.net_weighting = True
        result = NTUplace4H(cfg2).run(again, resume_from=ckpt_dir)
        assert [net.weight for net in again.nets] == weights_after
        assert result.hpwl_final == first.hpwl_final
