"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main


@pytest.fixture
def bench_dir(tmp_path):
    out = str(tmp_path / "bench")
    rc = main(
        [
            "generate", "--name", "clitest", "--cells", "150", "--macros", "1",
            "--seed", "3", "--out", out,
        ]
    )
    assert rc == 0
    return out


class TestGenerate:
    def test_creates_aux(self, bench_dir):
        assert os.path.exists(os.path.join(bench_dir, "clitest.aux"))

    def test_suite_generate(self, tmp_path, capsys):
        out = str(tmp_path / "s")
        assert main(["generate", "--suite", "rh01", "--out", out]) == 0
        assert os.path.exists(os.path.join(out, "rh01.aux"))
        assert "rh01" in capsys.readouterr().out


class TestStats:
    def test_stats_consistent(self, bench_dir, capsys):
        rc = main(["stats", "--aux", os.path.join(bench_dir, "clitest.aux")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "consistent" in out
        assert "#cells" in out


class TestPlace:
    def test_place_and_write(self, bench_dir, tmp_path, capsys):
        placed = str(tmp_path / "placed")
        svg = str(tmp_path / "p.svg")
        rc = main(
            [
                "place", "--aux", os.path.join(bench_dir, "clitest.aux"),
                "--out", placed, "--svg", svg, "--no-dp", "--wirelength-only",
            ]
        )
        assert rc == 0
        assert os.path.exists(os.path.join(placed, "clitest.aux"))
        assert os.path.exists(svg)
        assert "flow result" in capsys.readouterr().out

    def test_place_baseline(self, bench_dir, capsys):
        rc = main(
            [
                "place", "--aux", os.path.join(bench_dir, "clitest.aux"),
                "--baseline", "random", "--no-route",
            ]
        )
        assert rc == 0


class TestValidate:
    def test_clean_design(self, bench_dir, capsys):
        rc = main(["validate", "--aux", os.path.join(bench_dir, "clitest.aux")])
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_fatal_design_exits_2(self, bench_dir, tmp_path, capsys):
        import shutil

        bad = str(tmp_path / "bad")
        shutil.copytree(bench_dir, bad)
        nodes = os.path.join(bad, "clitest.nodes")
        text = open(nodes).read().replace(" 1.75 ", " -1.75 ", 1)
        if " -1.75 " not in text:  # fall back to any width token
            lines = text.splitlines()
            for i, line in enumerate(lines):
                parts = line.split()
                if len(parts) >= 3 and parts[0].startswith("c"):
                    parts[1] = "-" + parts[1]
                    lines[i] = " ".join(parts)
                    break
            text = "\n".join(lines) + "\n"
        open(nodes, "w").write(text)
        rc = main(["validate", "--aux", os.path.join(bad, "clitest.aux")])
        assert rc == 2
        out = capsys.readouterr().out
        assert "fatal" in out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        rc = main(["validate", "--aux", str(tmp_path / "gone.aux")])
        assert rc == 2


class TestResilienceFlags:
    def test_resume_requires_checkpoint_dir(self, bench_dir, capsys):
        rc = main(
            ["place", "--aux", os.path.join(bench_dir, "clitest.aux"), "--resume"]
        )
        assert rc == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_checkpoint_then_resume(self, bench_dir, tmp_path, capsys):
        ckpt = str(tmp_path / "ck")
        aux = os.path.join(bench_dir, "clitest.aux")
        base = ["place", "--aux", aux, "--no-route", "--checkpoint-dir", ckpt]
        assert main(base) == 0
        assert os.path.exists(os.path.join(ckpt, "checkpoint.json"))
        assert main(base + ["--resume"]) == 0

    def test_strict_flags_degraded_run(self, bench_dir, capsys):
        from repro.resilience import FaultPlan, install_plan, reset_plan

        aux = os.path.join(bench_dir, "clitest.aux")
        try:
            install_plan(FaultPlan.parse("raise.dp"))
            rc = main(["place", "--aux", aux, "--no-route", "--strict"])
        finally:
            reset_plan()
        assert rc == 1
        err = capsys.readouterr().err
        assert "degraded" in err and "stage=dp" in err

    def test_missing_checkpoint_reports_failure(self, bench_dir, tmp_path, capsys):
        rc = main(
            [
                "place", "--aux", os.path.join(bench_dir, "clitest.aux"),
                "--checkpoint-dir", str(tmp_path / "nope"), "--resume",
            ]
        )
        assert rc == 3
        assert "flow failed" in capsys.readouterr().err


class TestDPKnobs:
    def test_knobs_reach_flow_config(self):
        from repro.cli import _apply_dp_knobs, build_parser
        from repro.flow.config import FlowConfig

        args = build_parser().parse_args(
            ["place", "--aux", "x.aux", "--dp-passes", "1", "--dp-reference"]
        )
        cfg = FlowConfig()
        _apply_dp_knobs(cfg, args)
        assert cfg.dp.rounds == 1
        assert cfg.dp.reference is True
        assert cfg.legal.reference is True

    def test_defaults_leave_config_untouched(self):
        from repro.cli import _apply_dp_knobs, build_parser
        from repro.flow.config import FlowConfig

        args = build_parser().parse_args(["place", "--aux", "x.aux"])
        cfg = FlowConfig()
        _apply_dp_knobs(cfg, args)
        default = FlowConfig()
        assert cfg.dp.rounds == default.dp.rounds
        assert cfg.dp.reference is False
        assert cfg.legal.reference is False

    def test_place_with_dp_knobs(self, bench_dir):
        rc = main(
            [
                "place", "--aux", os.path.join(bench_dir, "clitest.aux"),
                "--no-route", "--dp-passes", "1", "--dp-reference",
            ]
        )
        assert rc == 0


class TestPredictCLI:
    def test_knobs_reach_flow_config(self):
        from repro.cli import _apply_predict_knobs, build_parser
        from repro.flow.config import FlowConfig

        args = build_parser().parse_args(
            [
                "place", "--aux", "x.aux", "--estimator", "hybrid",
                "--predict-model", "m.json", "--predict-interval", "6",
                "--predict-drift-tol", "0.5",
            ]
        )
        cfg = FlowConfig()
        _apply_predict_knobs(cfg, args)
        assert cfg.gp.congestion_estimator == "hybrid"
        assert cfg.gp.predict_model == "m.json"
        assert cfg.gp.predict_router_interval == 6
        assert cfg.gp.predict_drift_tol == 0.5

    def test_defaults_leave_config_untouched(self):
        from repro.cli import _apply_predict_knobs, build_parser
        from repro.flow.config import FlowConfig

        args = build_parser().parse_args(["place", "--aux", "x.aux"])
        cfg = FlowConfig()
        _apply_predict_knobs(cfg, args)
        default = FlowConfig()
        assert cfg.gp.congestion_estimator == default.gp.congestion_estimator
        assert cfg.gp.predict_model is None

    def test_show_packaged_default(self, capsys):
        rc = main(["predict", "show"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "config_hash" in out

    def test_show_missing_artifact_exits_2(self, tmp_path, capsys):
        rc = main(["predict", "show", "--model", str(tmp_path / "gone.json")])
        assert rc == 2


class TestRoute:
    def test_route_scores(self, bench_dir, tmp_path, capsys):
        placed = str(tmp_path / "placed")
        main(
            [
                "place", "--aux", os.path.join(bench_dir, "clitest.aux"),
                "--out", placed, "--no-dp", "--no-route", "--wirelength-only",
            ]
        )
        capsys.readouterr()
        rc = main(["route", "--aux", os.path.join(placed, "clitest.aux"), "--map"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "RC" in out
        assert "scale" in out  # heat-map legend


class TestServeCLI:
    def test_serve_flags_reach_settings(self, tmp_path, monkeypatch, capsys):
        captured = {}

        class FakeServer:
            def __init__(self, root, host="127.0.0.1", port=0,
                         settings=None):
                captured["settings"] = settings
                self.url = f"http://{host}:{port}"
                self.root = str(root)

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def drain(self, timeout):
                captured["drain_timeout"] = timeout
                return {
                    "draining": True, "timeout": timeout,
                    "in_flight": 0, "drained": True,
                }

        monkeypatch.setattr("repro.serve.JobServer", FakeServer)
        # ``repro serve`` blocks on SIGTERM/SIGINT; stand in for the
        # signal so the command falls straight through to the drain.
        monkeypatch.setattr(
            "threading.Event.wait", lambda self, timeout=None: True
        )
        rc = main(
            [
                "serve", "--root", str(tmp_path / "srv"), "--port", "0",
                "--workers", "0", "--max-queue-depth", "7",
                "--rate-limit", "2.5", "--drain-timeout", "9",
            ]
        )
        assert rc == 0
        settings = captured["settings"]
        assert settings.max_queue_depth == 7
        assert settings.rate_limit == 2.5
        assert settings.drain_timeout == 9.0
        # SIGTERM path drains with the same deadline it was booted with.
        assert captured["drain_timeout"] == 9.0
        assert "serving jobs" in capsys.readouterr().out

    def test_jobs_drain_against_live_server(self, tmp_path, capsys):
        from repro.serve import JobServer, ServeSettings

        settings = ServeSettings(
            workers=0, poll_interval=0.02, monitor_interval=0.1
        )
        with JobServer(tmp_path / "srv", settings=settings) as server:
            rc = main(["jobs", "--url", server.url, "drain"])
            out = capsys.readouterr().out
            assert rc == 0
            assert "drained" in out
            assert "refused with 503" in out
            # And the server really is draining now.
            assert server.supervisor.draining is True
