"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main


@pytest.fixture
def bench_dir(tmp_path):
    out = str(tmp_path / "bench")
    rc = main(
        [
            "generate", "--name", "clitest", "--cells", "150", "--macros", "1",
            "--seed", "3", "--out", out,
        ]
    )
    assert rc == 0
    return out


class TestGenerate:
    def test_creates_aux(self, bench_dir):
        assert os.path.exists(os.path.join(bench_dir, "clitest.aux"))

    def test_suite_generate(self, tmp_path, capsys):
        out = str(tmp_path / "s")
        assert main(["generate", "--suite", "rh01", "--out", out]) == 0
        assert os.path.exists(os.path.join(out, "rh01.aux"))
        assert "rh01" in capsys.readouterr().out


class TestStats:
    def test_stats_consistent(self, bench_dir, capsys):
        rc = main(["stats", "--aux", os.path.join(bench_dir, "clitest.aux")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "consistent" in out
        assert "#cells" in out


class TestPlace:
    def test_place_and_write(self, bench_dir, tmp_path, capsys):
        placed = str(tmp_path / "placed")
        svg = str(tmp_path / "p.svg")
        rc = main(
            [
                "place", "--aux", os.path.join(bench_dir, "clitest.aux"),
                "--out", placed, "--svg", svg, "--no-dp", "--wirelength-only",
            ]
        )
        assert rc == 0
        assert os.path.exists(os.path.join(placed, "clitest.aux"))
        assert os.path.exists(svg)
        assert "flow result" in capsys.readouterr().out

    def test_place_baseline(self, bench_dir, capsys):
        rc = main(
            [
                "place", "--aux", os.path.join(bench_dir, "clitest.aux"),
                "--baseline", "random", "--no-route",
            ]
        )
        assert rc == 0


class TestRoute:
    def test_route_scores(self, bench_dir, tmp_path, capsys):
        placed = str(tmp_path / "placed")
        main(
            [
                "place", "--aux", os.path.join(bench_dir, "clitest.aux"),
                "--out", placed, "--no-dp", "--no-route", "--wirelength-only",
            ]
        )
        capsys.readouterr()
        rc = main(["route", "--aux", os.path.join(placed, "clitest.aux"), "--map"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "RC" in out
        assert "scale" in out  # heat-map legend
