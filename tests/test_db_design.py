"""Tests for the design database container."""

import numpy as np
import pytest

from repro.db import Design, Net, Node, NodeKind, Pin, Region, Row
from repro.geometry import Orientation, Rect


def small_design():
    d = Design("t", core=Rect(0, 0, 100, 100))
    a = d.add_node(Node("a", 2, 1, x=10, y=10))
    b = d.add_node(Node("b", 4, 1, x=20, y=20))
    c = d.add_node(Node("c", 6, 6, kind=NodeKind.FIXED, x=50, y=50))
    d.add_net(Net("n1", pins=[Pin(node=a.index, dx=1), Pin(node=b.index, dx=-2)]))
    d.add_net(Net("n2", pins=[Pin(node=b.index), Pin(node=c.index)], weight=2.0))
    return d


class TestConstruction:
    def test_duplicate_node_raises(self):
        d = Design("t")
        d.add_node(Node("a", 1, 1))
        with pytest.raises(ValueError):
            d.add_node(Node("a", 2, 2))

    def test_duplicate_net_raises(self):
        d = small_design()
        with pytest.raises(ValueError):
            d.add_net(Net("n1", pins=[Pin(node=0), Pin(node=1)]))

    def test_net_pin_validates_node(self):
        d = Design("t")
        d.add_node(Node("a", 1, 1))
        with pytest.raises(ValueError):
            d.add_net(Net("bad", pins=[Pin(node=5)]))

    def test_node_lookup(self):
        d = small_design()
        assert d.node("b").width == 4
        assert d.has_node("a") and not d.has_node("zz")

    def test_counts(self):
        d = small_design()
        assert d.num_nodes == 3
        assert d.num_nets == 2
        assert d.num_pins == 4

    def test_node_pins_backref(self):
        d = small_design()
        assert len(d.node("b").pins) == 2

    def test_connect_appends_pin(self):
        d = small_design()
        net = d.net("n1")
        d.connect(net, d.node("c"), dx=0.5)
        assert net.degree == 3
        assert d.num_pins == 5

    def test_module_assignment_registers_in_hierarchy(self):
        d = Design("t", core=Rect(0, 0, 10, 10))
        n = d.add_node(Node("a", 1, 1, module="top/u1"))
        assert n.index in d.hierarchy.get("top/u1").cells


class TestGeometryViews:
    def test_core_from_rows(self):
        d = Design("t")
        d.add_row(Row(y=0, height=1, site_width=0.5, x_min=0, num_sites=20))
        d.add_row(Row(y=1, height=1, site_width=0.5, x_min=0, num_sites=20))
        core = d.core
        assert core.xh == 10 and core.yh == 2

    def test_core_without_rows_raises(self):
        with pytest.raises(ValueError):
            Design("t").core

    def test_pull_push_centers(self):
        d = small_design()
        cx, cy = d.pull_centers()
        assert cx[0] == pytest.approx(11.0)  # 10 + 2/2
        cx[0] = 30.0
        d.push_centers(cx, cy)
        assert d.node("a").cx == pytest.approx(30.0)
        # fixed node never moves
        cx[2] = 0.0
        d.push_centers(cx, cy)
        assert d.node("c").x == 50

    def test_placed_sizes_follow_orientation(self):
        d = small_design()
        node = d.node("b")
        d.set_orientation(node, Orientation.W)
        w, h = d.placed_sizes()
        assert (w[node.index], h[node.index]) == (1, 4)

    def test_set_orientation_preserves_center(self):
        d = small_design()
        node = d.node("b")
        c0 = (node.cx, node.cy)
        d.set_orientation(node, Orientation.E)
        assert (node.cx, node.cy) == pytest.approx(c0)

    def test_masks(self):
        d = small_design()
        assert d.movable_mask().tolist() == [True, True, False]
        assert d.fixed_mask().tolist() == [False, False, True]
        assert d.movable_indices().tolist() == [0, 1]


class TestPinArrays:
    def test_csr_structure(self):
        d = small_design()
        arr = d.pin_arrays()
        assert arr.num_pins == 4
        assert arr.net_ptr.tolist() == [0, 2, 4]
        assert arr.net_weight.tolist() == [1.0, 2.0]

    def test_cache_invalidation_on_orientation(self):
        d = small_design()
        a1 = d.pin_arrays()
        assert d.pin_arrays() is a1  # cached
        d.set_orientation(d.node("b"), Orientation.S)
        a2 = d.pin_arrays()
        assert a2 is not a1

    def test_oriented_offsets(self):
        d = small_design()
        d.set_orientation(d.node("a"), Orientation.S)
        arr = d.pin_arrays()
        # pin on node a had dx=1; S negates it
        assert arr.pin_dx[0] == pytest.approx(-1.0)

    def test_pin_positions(self):
        d = small_design()
        arr = d.pin_arrays()
        cx, cy = d.pull_centers()
        px, py = arr.pin_positions(cx, cy)
        assert px[0] == pytest.approx(d.node("a").cx + 1)


class TestMetrics:
    def test_hpwl_matches_manual(self):
        d = small_design()
        # n1: pins at (11+1, 10.5) and (22-2, 20.5) -> dx 8, dy 10 -> 18
        # n2: pins at (22, 20.5) and (53, 53) -> (31 + 32.5) * w2 = 127
        assert d.hpwl() == pytest.approx(18 + 2 * 63.5)

    def test_hpwl_empty(self):
        d = Design("t", core=Rect(0, 0, 1, 1))
        assert d.hpwl() == 0.0

    def test_movable_area(self):
        d = small_design()
        assert d.movable_area() == pytest.approx(2 + 4)

    def test_utilization(self):
        d = small_design()
        free = 100 * 100 - 36
        assert d.utilization() == pytest.approx(6 / free)

    def test_validate_clean(self):
        assert small_design().validate() == []

    def test_validate_flags_empty_net(self):
        d = small_design()
        d.nets.append(Net("empty", index=2))
        assert any("no pins" in p for p in d.validate())


class TestSnapshots:
    def test_clone_restore(self):
        d = small_design()
        snap = d.clone_placement()
        node = d.node("a")
        node.x = 99
        d.set_orientation(d.node("b"), Orientation.FS)
        d.restore_placement(snap)
        assert node.x == 10
        assert d.node("b").orientation is Orientation.N
