"""Tests for the design-hierarchy tree."""

import pytest

from repro.db import HierarchyTree


class TestEnsure:
    def test_root_exists(self):
        t = HierarchyTree()
        assert t.root.name == ""
        assert "" in t

    def test_ensure_creates_chain(self):
        t = HierarchyTree()
        m = t.ensure("top/cpu/alu")
        assert m.name == "top/cpu/alu"
        assert "top" in t and "top/cpu" in t

    def test_ensure_idempotent(self):
        t = HierarchyTree()
        a = t.ensure("top/u1")
        b = t.ensure("top/u1")
        assert a is b

    def test_parent_child_links(self):
        t = HierarchyTree()
        m = t.ensure("top/cpu/alu")
        assert m.parent.name == "top/cpu"
        assert m.parent.children["alu"] is m

    def test_local_name_and_depth(self):
        t = HierarchyTree()
        m = t.ensure("top/cpu/alu")
        assert m.local_name == "alu"
        assert m.depth == 2


class TestCells:
    def test_assign_cell(self):
        t = HierarchyTree()
        t.assign_cell(7, "top/u1")
        assert t.get("top/u1").cells == [7]

    def test_all_cells_covers_subtree(self):
        t = HierarchyTree()
        t.assign_cell(1, "top/u1")
        t.assign_cell(2, "top/u1/x")
        t.assign_cell(3, "top/u2")
        assert sorted(t.get("top/u1").all_cells()) == [1, 2]
        assert sorted(t.get("top").all_cells()) == [1, 2, 3]

    def test_modules_preorder(self):
        t = HierarchyTree()
        t.ensure("top/a")
        t.ensure("top/b")
        names = [m.name for m in t.modules()]
        assert names[0] == ""
        assert "top/a" in names and "top/b" in names


class TestQueries:
    def test_lowest_common_module(self):
        t = HierarchyTree()
        t.ensure("top/cpu/alu")
        t.ensure("top/cpu/fpu")
        lcm = t.lowest_common_module("top/cpu/alu", "top/cpu/fpu")
        assert lcm.name == "top/cpu"

    def test_lowest_common_module_disjoint(self):
        t = HierarchyTree()
        t.ensure("a/x")
        t.ensure("b/y")
        assert t.lowest_common_module("a/x", "b/y").name == ""

    def test_fenced_ancestor_innermost_wins(self):
        t = HierarchyTree()
        outer = t.ensure("top/cpu")
        inner = t.ensure("top/cpu/alu")
        outer.region = 0
        inner.region = 1
        assert t.fenced_ancestor("top/cpu/alu").region == 1
        assert t.fenced_ancestor("top/cpu/fpu") is None  # not created
        t.ensure("top/cpu/fpu")
        assert t.fenced_ancestor("top/cpu/fpu").region == 0

    def test_fenced_ancestor_none(self):
        t = HierarchyTree()
        t.ensure("top/u")
        assert t.fenced_ancestor("top/u") is None

    def test_get_missing_raises(self):
        with pytest.raises(KeyError):
            HierarchyTree().get("nope")
