"""Tests for db odds and ends: stats, pins, rows, regions, node kinds."""

import pytest

from repro.benchgen import BenchmarkSpec, make_benchmark
from repro.db import (
    Design,
    Net,
    Node,
    NodeKind,
    Pin,
    PinDirection,
    Region,
    Row,
    compute_stats,
)
from repro.geometry import Orientation, Point, Rect


class TestNodeKind:
    @pytest.mark.parametrize("kind", [NodeKind.CELL, NodeKind.MACRO, NodeKind.FILLER])
    def test_movable_kinds(self, kind):
        assert kind.is_movable and not kind.is_fixed

    @pytest.mark.parametrize(
        "kind", [NodeKind.FIXED, NodeKind.TERMINAL, NodeKind.TERMINAL_NI]
    )
    def test_fixed_kinds(self, kind):
        assert kind.is_fixed and not kind.is_movable

    def test_terminal_ni_does_not_block(self):
        assert not NodeKind.TERMINAL_NI.blocks_placement
        assert NodeKind.TERMINAL.blocks_placement


class TestNodeGeometry:
    def test_placed_dims_rotate(self):
        n = Node("a", 4, 2, orientation=Orientation.E)
        assert (n.placed_width, n.placed_height) == (2, 4)

    def test_rect_and_centres(self):
        n = Node("a", 4, 2, x=1, y=1)
        assert n.rect == Rect(1, 1, 5, 3)
        assert (n.cx, n.cy) == (3, 2)

    def test_move_center_to(self):
        n = Node("a", 4, 2)
        n.move_center_to(10, 10)
        assert (n.x, n.y) == (8, 9)

    def test_is_macro(self):
        assert Node("m", 1, 1, kind=NodeKind.MACRO).is_macro
        assert Node("f", 1, 1, kind=NodeKind.FIXED).is_macro
        assert not Node("c", 1, 1).is_macro


class TestPinDirection:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("I", PinDirection.INPUT),
            ("input", PinDirection.INPUT),
            ("O:", PinDirection.OUTPUT),
            ("B", PinDirection.BIDIR),
            ("InOut", PinDirection.BIDIR),
        ],
    )
    def test_parse(self, text, expected):
        assert PinDirection.from_string(text) is expected

    def test_bad_raises(self):
        with pytest.raises(ValueError):
            PinDirection.from_string("Z")


class TestRow:
    def test_extent(self):
        r = Row(y=2, height=1, site_width=0.5, x_min=1.0, num_sites=10)
        assert r.x_max == 6.0
        assert r.rect == Rect(1.0, 2, 6.0, 3)

    def test_snap_x(self):
        r = Row(y=0, height=1, site_width=0.5, x_min=1.0, num_sites=10)
        assert r.snap_x(2.3) == pytest.approx(2.5)
        assert r.snap_x(-5) == 1.0
        assert r.snap_x(100) == 6.0


class TestRegion:
    def region(self):
        return Region("r", rects=[Rect(0, 0, 4, 4), Rect(10, 0, 14, 4)])

    def test_area_and_bbox(self):
        r = self.region()
        assert r.area == 32
        assert r.bounding_box == Rect(0, 0, 14, 4)

    def test_contains_point(self):
        r = self.region()
        assert r.contains_point(Point(2, 2))
        assert not r.contains_point(Point(7, 2))

    def test_contains_rect_single_member(self):
        r = self.region()
        assert r.contains_rect(Rect(11, 1, 13, 3))
        assert not r.contains_rect(Rect(3, 0, 11, 4))  # straddles the gap

    def test_clamp_point(self):
        r = self.region()
        p = r.clamp_point(Point(7, 2))
        assert p.x in (4, 10)

    def test_clamp_rect_origin(self):
        r = self.region()
        origin = r.clamp_rect_origin(Rect(6, 1, 8, 3))
        assert origin.x in (2.0, 10.0)

    def test_empty_region_raises(self):
        with pytest.raises(ValueError):
            Region("e").bounding_box


class TestStats:
    def test_stats_fields(self):
        d = make_benchmark(
            BenchmarkSpec(
                name="s", num_cells=100, num_macros=2, num_fixed_macros=1,
                num_terminals=4, num_fences=1, fence_level=1, seed=8,
            )
        )
        stats = compute_stats(d)
        assert stats.num_cells == 100
        assert stats.num_macros == 2
        assert stats.num_regions == 1
        assert stats.avg_net_degree >= 2
        assert 0 < stats.utilization < 1.2
        row = stats.as_row()
        assert row["design"] == "s"
        assert row["#fences"] == 1

    def test_stats_empty_design(self):
        d = Design("e", core=Rect(0, 0, 10, 10))
        stats = compute_stats(d)
        assert stats.num_cells == 0
        assert stats.avg_net_degree == 0.0
        assert stats.max_net_degree == 0


class TestPinArraysEdge:
    def test_empty_nets_in_csr(self):
        d = Design("t", core=Rect(0, 0, 10, 10))
        d.add_node(Node("a", 1, 1))
        d.add_node(Node("b", 1, 1))
        d.add_net(Net("n1", pins=[Pin(node=0), Pin(node=1)]))
        arrays = d.pin_arrays()
        assert arrays.num_nets == 1
        px, py = arrays.pin_positions(*d.pull_centers())
        assert len(px) == 2
