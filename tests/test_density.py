"""Tests for the bell-shaped density model and the overflow metric."""

import numpy as np
import pytest

from repro.db import Design, Node, NodeKind
from repro.density import BellDensity, bell_kernel, density_map, density_overflow
from repro.geometry import Rect
from repro.grids import BinGrid
from repro.wirelength import finite_difference_gradient


def make_design(n_cells=15, macro=True, seed=0, core=100.0):
    rng = np.random.default_rng(seed)
    d = Design("t", core=Rect(0, 0, core, core))
    for i in range(n_cells):
        d.add_node(
            Node(
                f"c{i}", 2.0, 1.0,
                x=float(rng.uniform(5, core - 10)),
                y=float(rng.uniform(5, core - 10)),
            )
        )
    if macro:
        d.add_node(Node("m", 22.0, 17.0, kind=NodeKind.MACRO, x=40, y=40))
    return d


def model_for(d, nx=16, ny=16, fixed=()):
    grid = BinGrid(d.core, nx, ny)
    w, h = d.placed_sizes()
    return grid, BellDensity(grid, w, h, d.movable_mask(), fixed_rects=fixed)


class TestKernel:
    def test_peak_at_zero(self):
        p, dp = bell_kernel(0.0, 2.0, 1.0)
        assert p == pytest.approx(1.0)
        assert dp == pytest.approx(0.0)

    def test_zero_outside_support(self):
        w, wb = 2.0, 1.0
        p, _ = bell_kernel(w / 2 + 2 * wb + 0.01, w, wb)
        assert p == 0.0

    def test_continuous_at_joints(self):
        w, wb = 3.0, 1.0
        r1 = w / 2 + wb
        p_in, _ = bell_kernel(r1 - 1e-9, w, wb)
        p_out, _ = bell_kernel(r1 + 1e-9, w, wb)
        assert p_in == pytest.approx(p_out, abs=1e-6)

    def test_derivative_continuous_at_joints(self):
        w, wb = 3.0, 1.0
        r1 = w / 2 + wb
        _, d_in = bell_kernel(r1 - 1e-9, w, wb)
        _, d_out = bell_kernel(r1 + 1e-9, w, wb)
        assert d_in == pytest.approx(d_out, abs=1e-6)

    def test_even_function(self):
        p1, d1 = bell_kernel(0.7, 2.0, 1.0)
        p2, d2 = bell_kernel(-0.7, 2.0, 1.0)
        assert p1 == pytest.approx(p2)
        assert d1 == pytest.approx(-d2)

    def test_monotone_decreasing(self):
        ds = np.linspace(0, 3.0, 50)
        p, _ = bell_kernel(ds, 2.0, 1.0)
        assert (np.diff(p) <= 1e-12).all()


class TestPotential:
    def test_mass_conservation(self):
        d = make_design()
        grid, dens = model_for(d)
        cx, cy = d.pull_centers()
        phi, _, _ = dens.potential(cx, cy)
        movable_area = dens.areas[d.movable_mask()].sum()
        assert phi.sum() == pytest.approx(movable_area, rel=1e-9)

    def test_mass_conserved_near_boundary(self):
        """A cell pushed to the die edge keeps its full mass on-grid."""
        d = Design("t", core=Rect(0, 0, 10, 10))
        d.add_node(Node("a", 2.0, 1.0, x=0.0, y=0.0))
        grid, dens = model_for(d, 8, 8)
        cx, cy = d.pull_centers()
        phi, _, _ = dens.potential(cx, cy)
        assert phi.sum() == pytest.approx(2.0, rel=1e-9)

    def test_macro_takes_large_path(self):
        d = make_design(macro=True)
        grid, dens = model_for(d, 32, 32)
        assert len(dens._large) == 1
        assert len(dens._small) == 15

    def test_target_mass_covers_movable_area(self):
        d = make_design()
        _, dens = model_for(d, fixed=[(10, 10, 30, 30)])
        target = dens.target()
        movable = dens.areas[d.movable_mask()].sum()
        assert target.sum() >= movable - 1e-6

    def test_target_zero_under_fixed(self):
        d = make_design(n_cells=3, macro=False)
        grid, dens = model_for(d, 10, 10, fixed=[(0, 0, 10, 10)])
        # fully blocked bin -> zero free capacity -> zero target
        assert dens.target()[0, 0] == pytest.approx(0.0)

    def test_set_areas_changes_mass(self):
        d = make_design(macro=False)
        grid, dens = model_for(d)
        cx, cy = d.pull_centers()
        dens.set_areas(dens.areas * 2.0)
        phi, _, _ = dens.potential(cx, cy)
        assert phi.sum() == pytest.approx(2.0 * 2.0 * 15, rel=1e-9)


class TestGradient:
    def test_matches_finite_difference_cells(self):
        d = make_design(n_cells=10, macro=False, seed=3)
        grid, dens = model_for(d)
        cx, cy = d.pull_centers()
        _, gx, gy = dens.value_grad(cx, cy)
        fgx, fgy = finite_difference_gradient(dens.value, cx, cy, eps=1e-5)
        scale = max(np.abs(fgx).max(), 1.0)
        assert np.abs(gx - fgx).max() / scale < 1e-5
        assert np.abs(gy - fgy).max() / scale < 1e-5

    def test_matches_finite_difference_with_macro(self):
        d = make_design(n_cells=8, macro=True, seed=4)
        grid, dens = model_for(d)
        cx, cy = d.pull_centers()
        _, gx, gy = dens.value_grad(cx, cy)
        fgx, fgy = finite_difference_gradient(dens.value, cx, cy, eps=1e-5)
        scale = max(np.abs(fgx).max(), 1.0)
        assert np.abs(gx - fgx).max() / scale < 1e-5

    def test_fixed_nodes_zero_gradient(self):
        d = make_design(n_cells=5, macro=False)
        d.add_node(Node("blk", 10, 10, kind=NodeKind.FIXED, x=50, y=50))
        grid, dens = model_for(d)
        cx, cy = d.pull_centers()
        _, gx, gy = dens.value_grad(cx, cy)
        assert gx[-1] == 0.0 and gy[-1] == 0.0

    def test_gradient_pushes_apart(self):
        """Two stacked cells must feel opposite forces."""
        d = Design("t", core=Rect(0, 0, 10, 10))
        d.add_node(Node("a", 2, 1, x=4.4, y=5))
        d.add_node(Node("b", 2, 1, x=4.6, y=5))
        grid, dens = model_for(d, 10, 10)
        cx, cy = d.pull_centers()
        _, gx, _ = dens.value_grad(cx, cy)
        # decreasing cost means moving against the gradient: a goes left
        assert gx[0] > 0 or gx[1] < 0 or abs(gx[0] - gx[1]) > 0

    def test_value_decreases_when_spreading(self):
        d = Design("t", core=Rect(0, 0, 20, 20))
        for i in range(8):
            d.add_node(Node(f"c{i}", 2, 1, x=9, y=9))
        grid, dens = model_for(d, 10, 10)
        cx, cy = d.pull_centers()
        v_clumped = dens.value(cx, cy)
        rng = np.random.default_rng(0)
        cx2 = rng.uniform(2, 18, size=len(cx))
        cy2 = rng.uniform(2, 18, size=len(cy))
        assert dens.value(cx2, cy2) < v_clumped


class TestOverflowMetric:
    def test_zero_for_sparse(self):
        d = make_design(n_cells=4, macro=False)
        assert density_overflow(d, nx=8, ny=8) == pytest.approx(0.0, abs=1e-6)

    def test_positive_for_stacked(self):
        d = Design("t", core=Rect(0, 0, 40, 40))
        for i in range(40):
            d.add_node(Node(f"c{i}", 2, 1, x=20, y=20))
        assert density_overflow(d, nx=16, ny=16) > 0.5

    def test_respects_target_density(self):
        d = make_design(n_cells=6, macro=False)
        loose = density_overflow(d, target_density=1.0, nx=8, ny=8)
        tight = density_overflow(d, target_density=0.01, nx=8, ny=8)
        assert tight >= loose

    def test_density_map_shape(self):
        d = make_design()
        grid, dm = density_map(d, nx=12, ny=10)
        assert dm.shape == (12, 10)
        assert (dm >= 0).all()

    def test_no_movables(self):
        d = Design("t", core=Rect(0, 0, 10, 10))
        d.add_node(Node("blk", 2, 2, kind=NodeKind.FIXED))
        assert density_overflow(d) == 0.0
