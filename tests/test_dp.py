"""Tests for detailed placement (incremental HPWL + the move passes)."""

import numpy as np
import pytest

from repro.db import Design, Net, Node, NodeKind, Pin, Row
from repro.dp import (
    DetailedPlacer,
    DPConfig,
    IncrementalHPWL,
    global_swap_pass,
    local_reorder_pass,
    matching_pass,
    vertical_swap_pass,
)
from repro.legal import SubRowMap, check_legal, tetris_legalize


def rowed_design(n_cells=24, n_rows=6, sites=60, n_nets=16, seed=0):
    rng = np.random.default_rng(seed)
    d = Design("t")
    for r in range(n_rows):
        d.add_row(Row(y=float(r), height=1.0, site_width=0.25, x_min=0.0, num_sites=sites))
    for i in range(n_cells):
        d.add_node(Node(f"c{i}", 1.0, 1.0, x=float(rng.uniform(0, 13)), y=float(rng.uniform(0, 5))))
    for j in range(n_nets):
        k = int(rng.integers(2, 5))
        members = rng.choice(n_cells, size=k, replace=False)
        d.add_net(Net(f"n{j}", pins=[Pin(node=int(m)) for m in members]))
    submap = tetris_legalize(d)
    return d, submap


class TestIncrementalHPWL:
    def test_total_matches_design(self):
        d, _ = rowed_design()
        inc = IncrementalHPWL(d)
        assert inc.total() == pytest.approx(d.hpwl())

    def test_delta_matches_recompute(self):
        d, _ = rowed_design(seed=1)
        inc = IncrementalHPWL(d)
        before = d.hpwl()
        node = d.nodes[0]
        move = [(0, node.cx + 3.0, node.cy)]
        delta = inc.delta_for_moves(move)
        inc.apply_moves(move)
        assert d.hpwl() == pytest.approx(before + delta)
        assert inc.total() == pytest.approx(d.hpwl())

    def test_multi_node_delta(self):
        d, _ = rowed_design(seed=2)
        inc = IncrementalHPWL(d)
        before = d.hpwl()
        a, b = d.nodes[0], d.nodes[1]
        moves = [(0, b.cx, b.cy), (1, a.cx, a.cy)]
        delta = inc.delta_for_moves(moves)
        inc.apply_moves(moves)
        assert d.hpwl() == pytest.approx(before + delta)

    def test_delta_pure(self):
        d, _ = rowed_design(seed=3)
        inc = IncrementalHPWL(d)
        h0 = d.hpwl()
        inc.delta_for_moves([(0, 50.0, 3.0)])
        assert d.hpwl() == h0  # no mutation

    def test_optimal_region_median(self):
        d = Design("t")
        d.add_row(Row(y=0, height=1, site_width=0.25, x_min=0, num_sites=100))
        for k, x in enumerate((0.0, 10.0, 20.0)):
            d.add_node(Node(f"c{k}", 1, 1, x=x, y=0))
        d.add_net(Net("n1", pins=[Pin(node=0), Pin(node=1)]))
        d.add_net(Net("n2", pins=[Pin(node=1), Pin(node=2)]))
        inc = IncrementalHPWL(d)
        x_lo, x_hi, y_lo, y_hi = inc.optimal_region(1)
        # medians over the two nets' other-pin extremes: (0.5+20.5)/2
        assert x_lo == pytest.approx(10.5)
        assert x_hi == pytest.approx(10.5)

    def test_optimal_region_unconnected(self):
        d, _ = rowed_design()
        d.add_node(Node("lonely", 1, 1))
        inc = IncrementalHPWL(d)
        assert inc.optimal_region(d.node("lonely").index) is None


class TestPasses:
    @pytest.mark.parametrize(
        "pass_fn",
        [
            lambda d, inc, sm: global_swap_pass(d, inc),
            lambda d, inc, sm: vertical_swap_pass(d, inc),
            lambda d, inc, sm: local_reorder_pass(d, inc, sm),
            lambda d, inc, sm: matching_pass(d, inc),
        ],
        ids=["global_swap", "vertical_swap", "local_reorder", "matching"],
    )
    def test_pass_never_hurts_and_stays_legal(self, pass_fn):
        d, sm = rowed_design(n_cells=30, seed=4)
        before = d.hpwl()
        accepted, gain = pass_fn(d, IncrementalHPWL(d), sm)
        after = d.hpwl()
        assert after <= before + 1e-6
        assert gain == pytest.approx(before - after, abs=1e-6)
        assert check_legal(d).ok

    def test_global_swap_finds_obvious_swap(self):
        d = Design("t")
        d.add_row(Row(y=0, height=1, site_width=0.25, x_min=0, num_sites=100))
        d.add_row(Row(y=1, height=1, site_width=0.25, x_min=0, num_sites=100))
        # two anchor pairs placed crosswise
        a = d.add_node(Node("a", 1, 1, x=0.0, y=0.0))
        b = d.add_node(Node("b", 1, 1, x=20.0, y=0.0))
        pa = d.add_node(Node("pa", 1, 1, kind=NodeKind.FIXED, x=20.0, y=1.0))
        pb = d.add_node(Node("pb", 1, 1, kind=NodeKind.FIXED, x=0.0, y=1.0))
        d.add_net(Net("na", pins=[Pin(node=a.index), Pin(node=pa.index)]))
        d.add_net(Net("nb", pins=[Pin(node=b.index), Pin(node=pb.index)]))
        before = d.hpwl()
        accepted, gain = global_swap_pass(d, IncrementalHPWL(d))
        assert accepted == 1
        assert d.hpwl() < before

    def test_swap_respects_region(self):
        d, sm = rowed_design(n_cells=10, seed=5)
        d.nodes[0].region = 0  # pretend-fence one cell; no partner shares it
        from repro.db import Region
        from repro.geometry import Rect

        d.add_region(Region("f", rects=[Rect(0, 0, 15, 6)]))
        accepted, _ = global_swap_pass(d, IncrementalHPWL(d))
        # node 0 may only swap with same-region cells -> none exist
        assert d.nodes[0].region == 0  # unchanged, no crash

    def test_gate_blocks_moves(self):
        d, sm = rowed_design(n_cells=20, seed=6)
        always_block = lambda moves: False
        accepted, gain = global_swap_pass(d, IncrementalHPWL(d), gate=always_block)
        assert accepted == 0 and gain == 0


class TestEngine:
    def test_engine_improves_or_equal(self):
        d, sm = rowed_design(n_cells=40, n_nets=30, seed=7)
        before = d.hpwl()
        report = DetailedPlacer(DPConfig(rounds=1, congestion_aware=False)).run(d, sm)
        assert report.hpwl_after <= before + 1e-6
        assert report.hpwl_before == pytest.approx(before)
        assert check_legal(d).ok

    def test_engine_records_passes(self):
        d, sm = rowed_design(seed=8)
        report = DetailedPlacer(DPConfig(rounds=1, congestion_aware=False)).run(d, sm)
        names = [p[0] for p in report.passes]
        assert "global_swap" in names and "matching" in names

    def test_improvement_property(self):
        d, sm = rowed_design(seed=9)
        report = DetailedPlacer(DPConfig(rounds=1, congestion_aware=False)).run(d, sm)
        assert 0 <= report.improvement <= 1
