"""Reference-vs-optimized equivalence of the DP & legalization hot paths.

Every optimized path introduced by the detailed-placement perf overhaul
must reproduce its ``reference=True`` golden twin *bit for bit*: the CSR
node→net/node→pin incidence, incremental HPWL deltas, batched move
scoring, optimal regions, the array-based Tetris/Abacus legalizers, the
legality audit, congestion spreading, and the end-to-end legalize+DP
pipeline.  ``benchmarks/bench_dp_perf.py`` asserts the same on the suite
designs; these tests keep the guarantee cheap enough to run on every
push.
"""

import numpy as np
import pytest

from repro.benchgen import BenchmarkSpec, make_benchmark
from repro.db import Design, Net, Node, NodeKind, Pin, Row
from repro.dp import DetailedPlacer, DPConfig, IncrementalHPWL
from repro.dp.swap import _SlotIndex
from repro.gp import initial_placement
from repro.legal import (
    LegalConfig,
    Legalizer,
    SubRowMap,
    check_legal,
    tetris_legalize,
)
from repro.legal.abacus import abacus_refine


def bench(seed=11, cells=200, macros=2, **kw):
    spec = BenchmarkSpec(
        name="t", num_cells=cells, num_macros=macros, num_fixed_macros=1,
        num_terminals=8, seed=seed, **kw,
    )
    return make_benchmark(spec)


def rowed_design(n_cells=30, n_rows=6, sites=60, n_nets=20, seed=0):
    """A small rowed design including degenerate 0- and 1-pin nets."""
    rng = np.random.default_rng(seed)
    d = Design("t")
    for r in range(n_rows):
        d.add_row(
            Row(y=float(r), height=1.0, site_width=0.25, x_min=0.0, num_sites=sites)
        )
    for i in range(n_cells):
        d.add_node(
            Node(
                f"c{i}", 1.0, 1.0,
                x=float(rng.uniform(0, 13)), y=float(rng.uniform(0, 5)),
            )
        )
    for j in range(n_nets):
        k = int(rng.integers(2, 6))
        members = rng.choice(n_cells, size=k, replace=False)
        d.add_net(Net(f"n{j}", pins=[Pin(node=int(m)) for m in members]))
    # Degenerate nets: contribute zero HPWL but must not break any of
    # the incidence/dirty-pin bookkeeping.
    d.add_net(Net("single", pins=[Pin(node=0)]))
    d.add_net(Net("empty", pins=[]))
    tetris_legalize(d)
    return d


def pair(design_fn):
    """(reference, optimized) IncrementalHPWL over identical placements."""
    d = design_fn()
    return IncrementalHPWL(d, reference=True), IncrementalHPWL(d, reference=False)


def random_moves(d, rng, n_moves, max_nodes=2):
    """Random candidate move lists over movable cells."""
    movable = [n.index for n in d.nodes if n.is_movable]
    out = []
    for _ in range(n_moves):
        k = int(rng.integers(1, max_nodes + 1))
        idxs = rng.choice(movable, size=k, replace=False)
        out.append(
            [
                (int(i), float(rng.uniform(0, 14)), float(rng.uniform(0, 5)))
                for i in idxs
            ]
        )
    return out


class TestNodeIncidence:
    @pytest.mark.parametrize("seed", [0, 3])
    def test_csr_matches_pin_objects(self, seed):
        d = rowed_design(seed=seed)
        inc_csr = d.node_incidence()
        arrays = d.pin_arrays()
        for node in d.nodes:
            i = node.index
            nets = inc_csr.node_net_ids[
                inc_csr.node_net_ptr[i] : inc_csr.node_net_ptr[i + 1]
            ].tolist()
            assert nets == sorted({p.net for p in node.pins})
            pins = inc_csr.node_pin_ids[
                inc_csr.node_pin_ptr[i] : inc_csr.node_pin_ptr[i + 1]
            ]
            assert np.all(arrays.pin_node[pins] == i)
        assert inc_csr.node_pin_ptr[-1] == arrays.num_pins

    def test_incidence_cached_per_topology(self):
        d = rowed_design()
        assert d.node_incidence() is d.node_incidence()


class TestDeltaEquivalence:
    @pytest.mark.parametrize("seed", [1, 4, 9])
    def test_delta_for_moves_bitwise(self, seed):
        ref, opt = pair(lambda: rowed_design(seed=seed))
        rng = np.random.default_rng(seed + 100)
        for ms in random_moves(ref.design, rng, 40, max_nodes=3):
            assert ref.delta_for_moves(ms) == opt.delta_for_moves(ms)

    def test_score_moves_single_node_batch_bitwise(self):
        ref, opt = pair(rowed_design)
        rng = np.random.default_rng(7)
        targets = [
            [(0, float(rng.uniform(0, 14)), float(rng.uniform(0, 5)))]
            for _ in range(12)
        ]
        assert np.array_equal(ref.score_moves(targets), opt.score_moves(targets))

    def test_score_moves_general_bitwise(self):
        ref, opt = pair(rowed_design)
        rng = np.random.default_rng(8)
        move_sets = random_moves(ref.design, rng, 25, max_nodes=3)
        assert np.array_equal(ref.score_moves(move_sets), opt.score_moves(move_sets))

    def test_apply_moves_keeps_state_bitwise(self):
        ref, opt = pair(rowed_design)
        rng = np.random.default_rng(9)
        for ms in random_moves(ref.design, rng, 15, max_nodes=2):
            ref.apply_moves(ms)
            opt.apply_moves(ms)
        assert np.array_equal(ref.px, opt.px)
        assert np.array_equal(ref.py, opt.py)
        assert np.array_equal(ref._bb, opt._bb)

    def test_optimal_regions_bitwise(self):
        ref, opt = pair(rowed_design)
        cells = [n.index for n in ref.design.nodes if n.is_movable]
        r = ref.optimal_regions(cells)
        o = opt.optimal_regions(cells)
        assert r == o


class TestPropertyRandomSequences:
    """Deltas and applies agree with a from-scratch HPWL recompute."""

    @pytest.mark.parametrize("seed", [2, 5, 13])
    def test_delta_then_apply_matches_full_recompute(self, seed):
        d = rowed_design(seed=seed)
        inc = IncrementalHPWL(d)
        rng = np.random.default_rng(seed)
        hpwl = d.hpwl()
        assert inc.total() == pytest.approx(hpwl, rel=1e-12)
        for ms in random_moves(d, rng, 30, max_nodes=3):
            delta = inc.delta_for_moves(ms)
            before = d.hpwl()
            inc.apply_moves(ms)
            after = d.hpwl()
            # The predicted delta must equal the actual change of the
            # independently recomputed wirelength.
            assert after - before == pytest.approx(delta, rel=1e-9, abs=1e-7)
            assert inc.total() == pytest.approx(after, rel=1e-12)

    def test_degenerate_nets_never_contribute(self):
        d = rowed_design(seed=3)
        inc = IncrementalHPWL(d)
        single = next(i for i, n in enumerate(d.nets) if n.name == "single")
        empty = next(i for i, n in enumerate(d.nets) if n.name == "empty")
        assert inc.net_hpwl(single) == 0.0
        assert inc.net_hpwl(empty) == 0.0
        # Moving the 1-pin net's only node is priced by its other nets.
        node = d.nodes[0]
        delta = inc.delta_for_moves([(0, node.cx + 2.0, node.cy)])
        before = d.hpwl()
        inc.apply_moves([(0, node.cx + 2.0, node.cy)])
        assert d.hpwl() - before == pytest.approx(delta, rel=1e-9, abs=1e-7)


class TestSlotIndex:
    def test_bucket_keys_are_integer_site_multiples(self):
        d = rowed_design()
        cells = [n.index for n in d.nodes if n.is_movable]
        index = _SlotIndex(d, cells)
        for wkey, rid in index.buckets:
            assert isinstance(wkey, int)
            assert isinstance(rid, int)

    def test_reference_and_fast_candidates_identical(self):
        d = rowed_design(seed=6)
        cells = [n.index for n in d.nodes if n.is_movable]
        ref = _SlotIndex(d, cells, reference=True)
        opt = _SlotIndex(d, cells, reference=False)
        rng = np.random.default_rng(6)
        for idx in cells:
            x = float(rng.uniform(0, 14))
            y = float(rng.uniform(0, 5))
            assert ref.candidates(idx, x, y, 8) == opt.candidates(idx, x, y, 8)


class TestLegalEquivalence:
    @pytest.mark.parametrize("seed", [11, 5])
    def test_tetris_bitwise(self, seed):
        states = {}
        for reference in (False, True):
            d = bench(seed=seed)
            initial_placement(d, seed=3)
            tetris_legalize(d, reference=reference)
            states[reference] = (
                np.array([n.x for n in d.nodes]),
                np.array([n.y for n in d.nodes]),
            )
        assert np.array_equal(states[False][0], states[True][0])
        assert np.array_equal(states[False][1], states[True][1])

    def test_abacus_bitwise(self):
        states = {}
        for reference in (False, True):
            d = bench(seed=11)
            initial_placement(d, seed=3)
            desired = {n.index: n.x for n in d.nodes if n.is_movable}
            submap = SubRowMap(d)
            tetris_legalize(d, submap, reference=reference)
            abacus_refine(d, submap, desired, reference=reference)
            states[reference] = np.array([n.x for n in d.nodes])
        assert np.array_equal(states[False], states[True])

    def test_check_legal_verdicts_match(self):
        d = bench(seed=11)
        initial_placement(d, seed=3)
        Legalizer().legalize(d)
        ref = check_legal(d, reference=True)
        opt = check_legal(d, reference=False)
        assert ref.ok == opt.ok
        assert ref.summary() == opt.summary()
        # And on an *illegal* placement both report the same failure.
        d.nodes[0].x = d.nodes[1].x
        d.nodes[0].y = d.nodes[1].y
        ref = check_legal(d, reference=True)
        opt = check_legal(d, reference=False)
        assert ref.ok == opt.ok is False


class TestPipelineEquivalence:
    @pytest.mark.parametrize(
        "kw",
        [
            {"seed": 11, "cells": 220, "macros": 2},
            {"seed": 5, "cells": 160, "macros": 2, "num_fences": 2},
        ],
    )
    def test_legalize_plus_dp_bitwise(self, kw):
        states = {}
        for reference in (False, True):
            d = bench(**kw)
            initial_placement(d, seed=3)
            result = Legalizer(LegalConfig(reference=reference)).legalize(d)
            report = DetailedPlacer(DPConfig(reference=reference)).run(
                d, result.submap
            )
            states[reference] = (
                np.array([n.x for n in d.nodes]),
                np.array([n.y for n in d.nodes]),
                report.passes,
            )
        assert np.array_equal(states[False][0], states[True][0])
        assert np.array_equal(states[False][1], states[True][1])
        assert states[False][2] == states[True][2]
