"""Tests for congestion-driven cell spreading."""

import numpy as np
import pytest

from repro.db import Design, Net, Node, NodeKind, Pin, Row
from repro.dp import DetailedPlacer, DPConfig, congestion_spread_pass
from repro.geometry import Rect
from repro.legal import check_legal, tetris_legalize
from repro.route import RoutingSpec


def hot_design(n_cells=30, seed=0):
    """Cells legalized into the left half; routing supply starved there."""
    rng = np.random.default_rng(seed)
    d = Design("hot")
    for r in range(8):
        d.add_row(Row(y=float(r), height=1.0, site_width=0.25, x_min=0.0, num_sites=160))
    for i in range(n_cells):
        d.add_node(
            Node(f"c{i}", 1.0, 1.0, x=float(rng.uniform(0, 8)), y=float(rng.uniform(0, 7)))
        )
    for j in range(n_cells // 2):
        members = rng.choice(n_cells, size=3, replace=False)
        d.add_net(Net(f"n{j}", pins=[Pin(node=int(m)) for m in members]))
    d.routing = RoutingSpec.uniform(Rect(0, 0, 40, 8), 10, 8, hcap=6, vcap=6)
    # starve the left quarter where all the cells sit
    d.routing.block_rect(Rect(0, 0, 10, 8), keep_fraction=0.05)
    return d


class TestSpreadPass:
    def test_moves_cells_and_stays_legal(self):
        d = hot_design()
        sm = tetris_legalize(d)
        moves, delta = congestion_spread_pass(d, sm, threshold=0.5, max_moves=50)
        assert moves > 0
        assert check_legal(d).ok

    def test_respects_move_cap(self):
        d = hot_design(seed=1)
        sm = tetris_legalize(d)
        moves, _ = congestion_spread_pass(d, sm, threshold=0.3, max_moves=3)
        assert moves <= 3

    def test_reduces_peak_rudy(self):
        from repro.route.rudy import rudy_map

        d = hot_design(seed=2)
        sm = tetris_legalize(d)
        grid = d.routing.grid

        def peak():
            demand = rudy_map(d.pin_arrays(), *d.pull_centers(), grid)
            supply = (d.routing.hcap * grid.bin_h + d.routing.vcap * grid.bin_w) / grid.bin_area
            with np.errstate(divide="ignore", invalid="ignore"):
                c = np.where(supply > 0, demand / np.maximum(supply, 1e-12), 0.0)
            return float(c.max())

        before = peak()
        moves, _ = congestion_spread_pass(d, sm, threshold=0.5, max_moves=100,
                                          hpwl_slack=0.05)
        after = peak()
        assert moves > 0
        assert after <= before + 1e-9

    def test_no_routing_no_op(self):
        d = hot_design(seed=3)
        sm = tetris_legalize(d)
        d.routing = None
        assert congestion_spread_pass(d, sm) == (0, 0.0)

    def test_cool_design_no_moves(self):
        d = hot_design(seed=4)
        # restore generous supply everywhere
        d.routing = RoutingSpec.uniform(Rect(0, 0, 40, 8), 10, 8, hcap=1e5, vcap=1e5)
        sm = tetris_legalize(d)
        moves, _ = congestion_spread_pass(d, sm, threshold=0.9)
        assert moves == 0


class TestEngineIntegration:
    def test_spread_runs_in_engine(self):
        d = hot_design(seed=5)
        sm = tetris_legalize(d)
        cfg = DPConfig(rounds=1, congestion_aware=True, spread_threshold=0.5)
        report = DetailedPlacer(cfg).run(d, sm)
        names = [p[0] for p in report.passes]
        assert "congestion_spread" in names
        assert check_legal(d).ok

    def test_spread_disabled(self):
        d = hot_design(seed=6)
        sm = tetris_legalize(d)
        cfg = DPConfig(rounds=1, congestion_aware=True, congestion_spread=False)
        report = DetailedPlacer(cfg).run(d, sm)
        assert "congestion_spread" not in [p[0] for p in report.passes]
