"""Tests for incremental (ECO) legalization."""

import numpy as np
import pytest

from repro.db import Design, Node, NodeKind, Row
from repro.legal import check_legal, eco_legalize, tetris_legalize


def legal_design(n_cells=40, seed=0):
    rng = np.random.default_rng(seed)
    d = Design("eco")
    for r in range(8):
        d.add_row(Row(y=float(r), height=1.0, site_width=0.25, x_min=0.0, num_sites=80))
    for i in range(n_cells):
        d.add_node(
            Node(f"c{i}", 1.0, 1.0, x=float(rng.uniform(0, 18)), y=float(rng.uniform(0, 7)))
        )
    tetris_legalize(d)
    assert check_legal(d).ok
    return d


class TestEco:
    def test_single_moved_cell_relegalized(self):
        d = legal_design()
        node = d.nodes[0]
        node.x, node.y = 7.13, 3.4  # arbitrary illegal spot
        res = eco_legalize(d, [0])
        assert res.ok
        assert check_legal(d).ok
        assert res.max_displacement < 5.0  # landed nearby

    def test_others_untouched(self):
        d = legal_design(seed=1)
        frozen = {n.index: (n.x, n.y) for n in d.nodes if n.index != 3}
        d.nodes[3].x = 9.0
        d.nodes[3].y = 2.5
        eco_legalize(d, [3])
        for idx, (x, y) in frozen.items():
            assert (d.nodes[idx].x, d.nodes[idx].y) == (x, y)

    def test_multiple_changes(self):
        d = legal_design(seed=2)
        changed = [0, 5, 9]
        for i in changed:
            d.nodes[i].x = 10.0
            d.nodes[i].y = 4.0
        res = eco_legalize(d, changed)
        assert res.ok
        assert check_legal(d).ok
        assert len(res.placed) == 3

    def test_added_cell(self):
        d = legal_design(seed=3)
        new = d.add_node(Node("added", 1.5, 1.0, x=5.0, y=5.0))
        res = eco_legalize(d, [new.index])
        assert res.ok
        assert check_legal(d).ok

    def test_resized_cell(self):
        d = legal_design(seed=4)
        node = d.nodes[2]
        node.width = 3.0  # grew: current spot likely overlaps now
        res = eco_legalize(d, [2])
        assert res.ok
        assert check_legal(d).ok

    def test_macro_rejected(self):
        d = legal_design(seed=5)
        mac = d.add_node(Node("m", 4.0, 3.0, kind=NodeKind.MACRO, x=5.0, y=2.0))
        res = eco_legalize(d, [mac.index])
        assert mac.index in res.failed

    def test_impossible_fit_reported(self):
        d = legal_design(seed=6)
        huge = d.add_node(Node("huge", 30.0, 1.0, x=0.0, y=0.0))
        res = eco_legalize(d, [huge.index])
        assert not res.ok
        assert huge.index in res.failed

    def test_displacement_accounting(self):
        d = legal_design(seed=7)
        d.nodes[1].x += 0.9
        res = eco_legalize(d, [1])
        assert res.total_displacement == pytest.approx(
            sum(dd for _, dd in res.placed)
        )
