"""Edge-path tests across modules: less-travelled branches that the
main suites don't reach."""

import os

import numpy as np
import pytest

from repro.benchgen import BenchmarkSpec, make_benchmark
from repro.db import Design, Net, Node, NodeKind, Pin
from repro.geometry import Rect
from repro.grids import BinGrid
from repro.route import GridGraph, RoutingSpec


class TestRoutingSpecMisc:
    def test_copy_is_deep(self):
        spec = RoutingSpec.uniform(Rect(0, 0, 8, 8), 4, 4, hcap=5, vcap=5)
        dup = spec.copy()
        dup.hcap[0, 0] = 0.0
        assert spec.hcap[0, 0] == 5.0

    def test_total_supply(self):
        spec = RoutingSpec.uniform(Rect(0, 0, 8, 8), 4, 4, hcap=2, vcap=3)
        assert spec.total_supply() == pytest.approx(16 * 2 + 16 * 3)

    def test_shape_validation(self):
        grid = BinGrid(Rect(0, 0, 8, 8), 4, 4)
        with pytest.raises(ValueError):
            RoutingSpec(grid, np.ones((2, 2)), np.ones((4, 4)))


class TestGridGraphBlockedEdges:
    def test_zero_capacity_edge_costs_prohibitive(self):
        spec = RoutingSpec.uniform(Rect(0, 0, 8, 8), 4, 4, hcap=0, vcap=5)
        g = GridGraph(spec)
        cost_e, cost_n = g.cost_arrays()
        assert cost_e.min() >= 1e6
        assert cost_n.max() < 1e3

    def test_unused_zero_cap_edge_not_congested(self):
        spec = RoutingSpec.uniform(Rect(0, 0, 8, 8), 4, 4, hcap=0, vcap=5)
        g = GridGraph(spec)
        cong = g.edge_congestion()
        finite = cong[np.isfinite(cong)]
        assert (finite == 0).all()

    def test_used_zero_cap_edge_infinite(self):
        spec = RoutingSpec.uniform(Rect(0, 0, 8, 8), 4, 4, hcap=0, vcap=5)
        g = GridGraph(spec)
        g.add_horizontal_run(0, 0, 1)
        assert np.isinf(g.edge_congestion()).any()


class TestDesignConnectErrors:
    def test_connect_unregistered_net(self):
        d = Design("t", core=Rect(0, 0, 4, 4))
        node = d.add_node(Node("a", 1, 1))
        loose = Net("loose")
        with pytest.raises(ValueError):
            d.connect(loose, node)


class TestClusteringCaps:
    def test_max_cluster_cells_respected(self):
        from repro.gp import cluster_design

        d = make_benchmark(
            BenchmarkSpec(name="cc", num_cells=200, num_macros=0,
                          num_fixed_macros=0, seed=31)
        )
        cd = cluster_design(d, ratio=0.1, max_cluster_cells=3)
        counts = {}
        for orig in range(len(d.nodes)):
            if d.nodes[orig].kind is NodeKind.CELL:
                counts[cd.assignment[orig]] = counts.get(cd.assignment[orig], 0) + 1
        assert max(counts.values()) <= 3


class TestWriterVariants:
    def test_write_without_optional_sections(self, tmp_path):
        from repro.io import read_bookshelf, write_bookshelf
        from repro.db import Row

        d = Design("plain")
        d.add_row(Row(y=0, height=1, site_width=0.25, x_min=0, num_sites=40))
        d.add_node(Node("a", 1, 1))
        d.add_node(Node("b", 1, 1))
        d.add_net(Net("n", pins=[Pin(node=0), Pin(node=1)]))
        aux = write_bookshelf(d, str(tmp_path))
        files = open(aux).read()
        assert ".route" not in files
        assert ".regions" not in files
        d2 = read_bookshelf(aux)
        assert d2.routing is None and d2.regions == []


class TestCliErrorPaths:
    def test_route_without_route_file(self, tmp_path, capsys):
        from repro.cli import main
        from repro.io import write_bookshelf
        from repro.db import Row

        d = Design("nr")
        d.add_row(Row(y=0, height=1, site_width=0.25, x_min=0, num_sites=40))
        d.add_node(Node("a", 1, 1))
        d.add_node(Node("b", 1, 1))
        d.add_net(Net("n", pins=[Pin(node=0), Pin(node=1)]))
        aux = write_bookshelf(d, str(tmp_path))
        assert main(["route", "--aux", aux]) == 2


class TestOptimRecording:
    def test_trajectory_recorded(self):
        from repro.optim import minimize_cg

        def f(x):
            return float(x @ x), 2 * x

        res = minimize_cg(f, np.ones(3), max_iter=10, step_init=0.5, record=True)
        assert len(res.trajectory) >= 2
        assert res.trajectory[0] >= res.trajectory[-1]


class TestGridTargets:
    def test_single_bin_grid(self):
        g = BinGrid(Rect(0, 0, 4, 4), 1, 1)
        field = np.array([[7.0]])
        assert g.bilinear_sample(field, 2.0, 2.0) == pytest.approx(7.0)

    def test_with_bin_target_tiny(self):
        g = BinGrid.with_bin_target(Rect(0, 0, 100, 1), 4)
        assert g.nx >= 1 and g.ny >= 1


class TestNetWeightMonotone:
    def test_repeated_application_monotone_bounded(self):
        from repro.gp import apply_congestion_net_weights

        d = make_benchmark(
            BenchmarkSpec(name="nw", num_cells=100, num_macros=0,
                          num_fixed_macros=0, seed=37, cap_factor=2.0)
        )
        cong = np.full((d.routing.grid.nx, d.routing.grid.ny), 2.0)
        prev_max = 1.0
        for _ in range(6):
            apply_congestion_net_weights(d, cong, max_weight=4.0)
            cur = max(net.weight for net in d.nets)
            assert cur >= prev_max - 1e-12
            prev_max = cur
        assert prev_max <= 4.0 + 1e-9
