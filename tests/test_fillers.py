"""Tests for filler insertion/removal."""

import numpy as np
import pytest

from repro.db import Design, Net, Node, NodeKind, Pin, Row
from repro.legal import (
    SubRowMap,
    check_legal,
    insert_fillers,
    remove_fillers,
    tetris_legalize,
)


def rowed_design(n_cells=12, n_rows=4, sites=40, seed=0):
    rng = np.random.default_rng(seed)
    d = Design("t")
    for r in range(n_rows):
        d.add_row(Row(y=float(r), height=1.0, site_width=0.25, x_min=0.0, num_sites=sites))
    for i in range(n_cells):
        d.add_node(
            Node(f"c{i}", 1.0, 1.0, x=float(rng.uniform(0, 9)), y=float(rng.uniform(0, 3)))
        )
    if n_cells >= 2:
        d.add_net(Net("n0", pins=[Pin(node=0), Pin(node=1)]))
    return d


class TestInsert:
    def test_fills_all_gaps(self):
        d = rowed_design()
        sm = tetris_legalize(d)
        added = insert_fillers(d, sm)
        assert added > 0
        total_width = sum(
            n.placed_width for n in d.nodes if n.is_movable
        )
        capacity = sum(sr.width for sr in sm.subrows)
        assert total_width == pytest.approx(capacity)

    def test_still_legal(self):
        d = rowed_design(seed=1)
        sm = tetris_legalize(d)
        insert_fillers(d, sm)
        assert check_legal(d).ok

    def test_respects_max_width(self):
        d = rowed_design(n_cells=2, seed=2)
        sm = tetris_legalize(d)
        insert_fillers(d, sm, max_width_sites=4)
        for n in d.nodes:
            if n.kind is NodeKind.FILLER:
                assert n.width <= 4 * 0.25 + 1e-9

    def test_fillers_carry_region(self):
        from repro.db import Region
        from repro.geometry import Rect

        d = rowed_design(n_cells=0)
        d.add_region(Region("f", rects=[Rect(0, 0, 10, 2)]))
        sm = SubRowMap(d)
        insert_fillers(d, sm)
        fenced = [n for n in d.nodes if n.kind is NodeKind.FILLER and n.region == 0]
        assert fenced

    def test_default_submap(self):
        d = rowed_design(seed=3)
        tetris_legalize(d)
        added = insert_fillers(d)  # builds its own map
        assert added > 0
        assert check_legal(d).ok


class TestRemove:
    def test_roundtrip(self):
        d = rowed_design(seed=4)
        sm = tetris_legalize(d)
        hp0 = d.hpwl()
        n0 = len(d.nodes)
        added = insert_fillers(d, sm)
        removed = remove_fillers(d)
        assert removed == added
        assert len(d.nodes) == n0
        assert d.hpwl() == pytest.approx(hp0)
        assert d.validate() == []

    def test_remove_none(self):
        d = rowed_design(seed=5)
        assert remove_fillers(d) == 0

    def test_net_indices_remapped(self):
        d = rowed_design(seed=6)
        sm = tetris_legalize(d)
        insert_fillers(d, sm)
        remove_fillers(d)
        for net in d.nets:
            for pin in net.pins:
                assert d.nodes[pin.node].kind is not NodeKind.FILLER
        # lookups still work
        assert d.node("c0").index == d._node_index["c0"]
