"""End-to-end tests for the NTUplace4h flow."""

import pytest

from repro.benchgen import BenchmarkSpec, make_benchmark
from repro.dp import DPConfig
from repro.flow import FlowConfig, NTUplace4H, wirelength_driven_flow
from repro.gp import GPConfig
from repro.legal import check_legal


def bench(seed=61, **kw):
    base = dict(
        name="f", num_cells=250, num_macros=2, num_fixed_macros=1,
        num_terminals=12, utilization=0.55, cap_factor=4.0, seed=seed,
    )
    base.update(kw)
    return make_benchmark(BenchmarkSpec(**base))


def fast_flow(routability=True) -> FlowConfig:
    cfg = FlowConfig() if routability else FlowConfig.wirelength_only()
    cfg.gp.clustering = False
    cfg.gp.max_outer_iterations = 14
    cfg.gp.inner_iterations = 16
    cfg.refine_outer_iterations = 6
    cfg.dp = DPConfig(rounds=1, congestion_aware=routability)
    return cfg


class TestFlow:
    def test_end_to_end_legal_and_routed(self):
        d = bench()
        res = NTUplace4H(fast_flow()).run(d)
        assert res.legal
        assert check_legal(d).ok
        assert res.rc > 0
        assert res.scaled_hpwl >= res.hpwl_final
        assert res.hpwl_gp > 0 and res.hpwl_legal > 0

    def test_stage_times_recorded(self):
        d = bench(seed=62)
        res = NTUplace4H(fast_flow()).run(d)
        for stage in ("global_place", "macro_legal_refine", "legalize", "detailed_place", "route"):
            assert stage in res.stage_seconds
        assert res.runtime_seconds > 0

    def test_no_route_mode(self):
        d = bench(seed=63)
        res = NTUplace4H(fast_flow()).run(d, route=False)
        assert res.rc == 0.0
        assert res.scaled_hpwl == res.hpwl_final

    def test_dp_improves_hpwl(self):
        d = bench(seed=64)
        res = NTUplace4H(fast_flow()).run(d, route=False)
        assert res.hpwl_final <= res.hpwl_legal + 1e-6

    def test_as_row_fields(self):
        d = bench(seed=65)
        res = NTUplace4H(fast_flow()).run(d)
        row = res.as_row()
        for key in ("design", "HPWL", "RC", "sHPWL", "legal", "time_s"):
            assert key in row

    def test_wirelength_only_factory(self):
        flow = wirelength_driven_flow()
        assert flow.config.gp.routability is False
        assert flow.config.dp.congestion_aware is False

    def test_fenced_flow_legal(self):
        d = bench(seed=66, num_cells=400, num_fences=1, fence_level=1)
        res = NTUplace4H(fast_flow()).run(d, route=False)
        assert res.legal, res.legal_result.report.summary()

    def test_flow_result_runtime_sum(self):
        d = bench(seed=67)
        res = NTUplace4H(fast_flow()).run(d)
        assert res.runtime_seconds == pytest.approx(sum(res.stage_seconds.values()))

    def test_weight_mutation_does_not_corrupt_reported_hpwl(self):
        """Flows that upweight nets must still score with original weights."""
        d1 = bench(seed=71, cap_factor=1.2, congested_band=0.5)
        cfg = fast_flow()
        cfg.net_weighting = True
        res = NTUplace4H(cfg).run(d1, route=False)
        # recompute with weights forced back to 1 (generator weights are 1)
        for net in d1.nets:
            net.weight = 1.0
        d1._topology_version += 1
        assert res.hpwl_final == pytest.approx(d1.hpwl(), rel=1e-9)

    def test_timing_weighting_flag(self):
        d = bench(seed=72)
        cfg = fast_flow(routability=False)
        cfg.timing_weighting = True
        res = NTUplace4H(cfg).run(d, route=False)
        assert res.legal

    def test_net_weighting_flag(self):
        d = bench(seed=69, cap_factor=1.2, congested_band=0.5)
        cfg = fast_flow()
        cfg.net_weighting = True
        res = NTUplace4H(cfg).run(d, route=False)
        assert res.legal
        assert max(net.weight for net in d.nets) > 1.0  # some nets upweighted

    def test_whitespace_reservation_off(self):
        d = bench(seed=70, congested_band=0.5)
        cfg = fast_flow()
        cfg.gp.whitespace_reservation = False
        res = NTUplace4H(cfg).run(d, route=False)
        assert res.legal


class TestMetricsReport:
    def test_comparison_table(self):
        from repro.metrics import comparison_table

        d1 = bench(seed=68)
        r1 = NTUplace4H(fast_flow()).run(d1)
        d2 = bench(seed=68)
        r2 = NTUplace4H(fast_flow(routability=False)).run(d2)
        table = comparison_table({"4h": {"f": r1}, "wl": {"f": r2}}, title="T")
        assert "4h.sHPWL" in table and "wl.sHPWL" in table
        assert "ratio/gmean" in table

    def test_format_table_alignment(self):
        from repro.metrics import format_table

        out = format_table([{"a": 1, "b": 2.5}, {"a": 100, "b": 0.125}])
        lines = out.splitlines()
        assert len(lines) == 4

    def test_format_table_empty(self):
        from repro.metrics import format_table

        assert "(no rows)" in format_table([])

    def test_geometric_mean(self):
        from repro.metrics import geometric_mean

        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([]) != geometric_mean([])  # nan

    def test_normalize_rows(self):
        from repro.metrics import normalize_rows

        rows = [
            {"design": "a", "flow": "base", "hpwl": 100.0},
            {"design": "a", "flow": "new", "hpwl": 90.0},
        ]
        out = normalize_rows(rows, "hpwl", "base")
        assert out[1]["hpwl_ratio"] == pytest.approx(0.9)
