"""Flow-variant tests: channels, early exits, config propagation."""

import pytest

from repro.benchgen import BenchmarkSpec, make_benchmark
from repro.db import NodeKind
from repro.dp import DPConfig, DetailedPlacer
from repro.flow import FlowConfig, NTUplace4H
from repro.legal import tetris_legalize


def bench(seed, **kw):
    base = dict(
        name="fv", num_cells=200, num_macros=2, num_fixed_macros=0,
        num_terminals=8, utilization=0.5, cap_factor=4.0, seed=seed,
    )
    base.update(kw)
    return make_benchmark(BenchmarkSpec(**base))


def quick(cfg: FlowConfig) -> FlowConfig:
    cfg.gp.clustering = False
    cfg.gp.max_outer_iterations = 10
    cfg.gp.inner_iterations = 12
    cfg.refine_outer_iterations = 4
    cfg.run_dp = False
    return cfg


class TestMacroChannel:
    def test_channel_clearance_in_flow(self):
        d = bench(81, num_macros=3, macro_area_fraction=0.3)
        cfg = quick(FlowConfig())
        cfg.macro_channel = 1.0
        res = NTUplace4H(cfg).run(d, route=False)
        assert res.legal
        macros = [n for n in d.nodes if n.kind is NodeKind.MACRO]
        for i in range(len(macros)):
            for j in range(i + 1, len(macros)):
                # clearance preserved between macro pairs
                assert not macros[i].rect.inflated(0.49).intersects(macros[j].rect)


class TestDPEarlyExit:
    def test_min_gain_stops_rounds(self):
        d = bench(82)
        sm = tetris_legalize(d)
        # Absurdly high bar: one round only, regardless of rounds=5.
        cfg = DPConfig(rounds=5, congestion_aware=False, min_gain_per_round=0.9)
        report = DetailedPlacer(cfg).run(d, sm)
        names = [p[0] for p in report.passes]
        assert names.count("global_swap") == 1


class TestConfigPropagation:
    def test_gp_model_reaches_placer(self):
        d = bench(83)
        cfg = quick(FlowConfig())
        cfg.gp.wirelength_model = "lse"
        res = NTUplace4H(cfg).run(d, route=False)
        assert res.legal  # and no crash with the LSE path

    def test_route_params_forwarded(self):
        d = bench(84)
        cfg = quick(FlowConfig())
        cfg.route_sweeps = 1
        cfg.route_maze_rounds = 0
        res = NTUplace4H(cfg).run(d, route=True)
        assert res.route_result.maze_rerouted == 0

    def test_wirelength_only_is_independent_config(self):
        a = FlowConfig.wirelength_only()
        b = FlowConfig()
        assert a.gp is not b.gp
        assert b.gp.routability is True
        assert a.gp.routability is False
