"""Tests for the eight placement orientations and their transforms."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Orientation, compose, invert, transform_offset, transform_size

ALL = list(Orientation)


class TestParsing:
    @pytest.mark.parametrize("name", ["N", "W", "S", "E", "FN", "FW", "FS", "FE"])
    def test_roundtrip(self, name):
        assert Orientation.from_string(name).value == name

    def test_case_insensitive(self):
        assert Orientation.from_string(" fn ") is Orientation.FN

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            Orientation.from_string("Q")


class TestProperties:
    def test_rotation_quarters(self):
        assert Orientation.N.rotation == 0
        assert Orientation.W.rotation == 1
        assert Orientation.S.rotation == 2
        assert Orientation.E.rotation == 3

    def test_flip_flag(self):
        assert not Orientation.S.is_flipped
        assert Orientation.FS.is_flipped

    def test_swaps_dimensions(self):
        assert Orientation.W.swaps_dimensions
        assert Orientation.E.swaps_dimensions
        assert not Orientation.S.swaps_dimensions
        assert Orientation.FW.swaps_dimensions


class TestTransformOffset:
    def test_identity(self):
        assert transform_offset(1.0, 2.0, Orientation.N) == (1.0, 2.0)

    def test_quarter_turn(self):
        # CCW 90: (1, 0) -> (0, 1)
        dx, dy = transform_offset(1.0, 0.0, Orientation.W)
        assert (dx, dy) == pytest.approx((0.0, 1.0))

    def test_half_turn(self):
        assert transform_offset(1.0, 2.0, Orientation.S) == pytest.approx((-1.0, -2.0))

    def test_flip_only(self):
        assert transform_offset(1.0, 2.0, Orientation.FN) == pytest.approx((-1.0, 2.0))

    def test_flip_then_rotate(self):
        # FW: flip x then rotate CCW: (1,0) -> (-1,0) -> (0,-1)
        assert transform_offset(1.0, 0.0, Orientation.FW) == pytest.approx((0.0, -1.0))

    @pytest.mark.parametrize("orient", ALL)
    def test_preserves_length(self, orient):
        dx, dy = transform_offset(3.0, 4.0, orient)
        assert math.hypot(dx, dy) == pytest.approx(5.0)


class TestTransformSize:
    def test_n_keeps(self):
        assert transform_size(3, 2, Orientation.N) == (3, 2)

    def test_w_swaps(self):
        assert transform_size(3, 2, Orientation.W) == (2, 3)

    @pytest.mark.parametrize("orient", ALL)
    def test_area_preserved(self, orient):
        w, h = transform_size(3, 2, orient)
        assert w * h == 6


class TestGroupStructure:
    @pytest.mark.parametrize("orient", ALL)
    def test_identity_neutral(self, orient):
        assert compose(orient, Orientation.N) is orient
        assert compose(Orientation.N, orient) is orient

    @pytest.mark.parametrize("orient", ALL)
    def test_inverse(self, orient):
        assert compose(orient, invert(orient)) is Orientation.N

    @pytest.mark.parametrize("a", ALL)
    @pytest.mark.parametrize("b", ALL)
    def test_compose_matches_matrix_action(self, a, b):
        """compose(a, then b) must act like applying a then b to offsets."""
        vec = (1.0, 0.7)
        step = transform_offset(*transform_offset(*vec, a), b)
        combined = transform_offset(*vec, compose(a, b))
        assert step == pytest.approx(combined)

    def test_eight_distinct_elements(self):
        assert len({o.value for o in ALL}) == 8
