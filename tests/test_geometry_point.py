"""Tests for repro.geometry.point."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point

coords = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


class TestPointAlgebra:
    def test_default_is_origin(self):
        assert Point() == Point(0.0, 0.0)

    def test_add(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)

    def test_sub(self):
        assert Point(5, 7) - Point(2, 3) == Point(3, 4)

    def test_scalar_mul(self):
        assert Point(1.5, -2.0) * 2 == Point(3.0, -4.0)

    def test_rmul(self):
        assert 2 * Point(1, 1) == Point(2, 2)

    def test_neg(self):
        assert -Point(1, -2) == Point(-1, 2)

    def test_iter_unpacking(self):
        x, y = Point(3, 4)
        assert (x, y) == (3, 4)

    def test_as_tuple(self):
        assert Point(1, 2).as_tuple() == (1, 2)

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Point(1, 2).x = 5


class TestPointMetrics:
    def test_dot(self):
        assert Point(1, 2).dot(Point(3, 4)) == 11

    def test_norm_345(self):
        assert Point(3, 4).norm() == pytest.approx(5.0)

    def test_manhattan(self):
        assert Point(0, 0).manhattan(Point(3, -4)) == 7

    @given(coords, coords)
    def test_norm_nonnegative(self, x, y):
        assert Point(x, y).norm() >= 0

    @given(coords, coords, coords, coords)
    def test_manhattan_symmetry(self, ax, ay, bx, by):
        a, b = Point(ax, ay), Point(bx, by)
        assert a.manhattan(b) == pytest.approx(b.manhattan(a))

    @given(coords, coords, coords, coords)
    def test_manhattan_dominates_euclid(self, ax, ay, bx, by):
        a, b = Point(ax, ay), Point(bx, by)
        assert a.manhattan(b) >= (a - b).norm() - 1e-6

    @given(coords, coords)
    def test_add_neg_is_zero(self, x, y):
        p = Point(x, y)
        assert (p + (-p)).norm() == 0
