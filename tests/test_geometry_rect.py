"""Tests for repro.geometry.rect."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, Rect

coords = st.floats(-1e4, 1e4, allow_nan=False, allow_infinity=False)
sizes = st.floats(0.0, 1e3, allow_nan=False, allow_infinity=False)


def rects():
    return st.builds(
        lambda x, y, w, h: Rect.from_size(x, y, w, h), coords, coords, sizes, sizes
    )


class TestConstruction:
    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)
        with pytest.raises(ValueError):
            Rect(0, 1, 1, 0)

    def test_degenerate_allowed(self):
        r = Rect(1, 2, 1, 2)
        assert r.area == 0

    def test_from_size(self):
        r = Rect.from_size(1, 2, 3, 4)
        assert (r.xl, r.yl, r.xh, r.yh) == (1, 2, 4, 6)

    def test_bounding(self):
        r = Rect.bounding([Point(0, 5), Point(3, 1), Point(-2, 2)])
        assert (r.xl, r.yl, r.xh, r.yh) == (-2, 1, 3, 5)

    def test_bounding_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.bounding([])


class TestProperties:
    def test_dims(self):
        r = Rect(0, 0, 4, 2)
        assert r.width == 4 and r.height == 2 and r.area == 8

    def test_center(self):
        assert Rect(0, 0, 4, 2).center == Point(2, 1)

    def test_half_perimeter(self):
        assert Rect(0, 0, 3, 4).half_perimeter() == 7

    def test_corners(self):
        r = Rect(1, 2, 3, 4)
        assert r.ll == Point(1, 2) and r.ur == Point(3, 4)


class TestPredicates:
    def test_contains_point_boundary(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains_point(Point(0, 0))
        assert not r.contains_point(Point(0, 0), strict=True)

    def test_contains_rect(self):
        assert Rect(0, 0, 10, 10).contains_rect(Rect(1, 1, 9, 9))
        assert not Rect(0, 0, 10, 10).contains_rect(Rect(1, 1, 11, 9))

    def test_intersects_strict_excludes_touching(self):
        a = Rect(0, 0, 1, 1)
        b = Rect(1, 0, 2, 1)
        assert not a.intersects(b)
        assert a.intersects(b, strict=False)

    def test_intersection_disjoint_none(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(2, 2, 3, 3)) is None

    def test_intersection_overlap(self):
        r = Rect(0, 0, 2, 2).intersection(Rect(1, 1, 3, 3))
        assert (r.xl, r.yl, r.xh, r.yh) == (1, 1, 2, 2)

    def test_overlap_area(self):
        assert Rect(0, 0, 2, 2).overlap_area(Rect(1, 1, 3, 3)) == 1.0
        assert Rect(0, 0, 1, 1).overlap_area(Rect(5, 5, 6, 6)) == 0.0

    @given(rects(), rects())
    def test_overlap_symmetry(self, a, b):
        assert a.overlap_area(b) == pytest.approx(b.overlap_area(a))

    @given(rects(), rects())
    def test_overlap_bounded(self, a, b):
        ov = a.overlap_area(b)
        assert ov <= min(a.area, b.area) + 1e-9
        assert ov >= 0

    @given(rects(), rects())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_rect(a) and u.contains_rect(b)


class TestTransforms:
    def test_inflated(self):
        r = Rect(0, 0, 2, 2).inflated(1)
        assert (r.xl, r.yl, r.xh, r.yh) == (-1, -1, 3, 3)

    def test_inflated_asymmetric(self):
        r = Rect(0, 0, 2, 2).inflated(1, 0.5)
        assert (r.xl, r.yl, r.xh, r.yh) == (-1, -0.5, 3, 2.5)

    def test_translated(self):
        r = Rect(0, 0, 1, 1).translated(5, -2)
        assert (r.xl, r.yl) == (5, -2)

    def test_moved_to_preserves_size(self):
        r = Rect(3, 4, 7, 6).moved_to(0, 0)
        assert (r.width, r.height) == (4, 2)
        assert (r.xl, r.yl) == (0, 0)

    def test_clamp_point_inside_unchanged(self):
        r = Rect(0, 0, 10, 10)
        assert r.clamp_point(Point(5, 5)) == Point(5, 5)

    def test_clamp_point_outside(self):
        r = Rect(0, 0, 10, 10)
        assert r.clamp_point(Point(-5, 20)) == Point(0, 10)

    def test_clamp_rect_origin_fits(self):
        core = Rect(0, 0, 10, 10)
        inner = Rect(9, 9, 11, 11)  # sticks out
        origin = core.clamp_rect_origin(inner)
        assert origin == Point(8, 8)

    def test_clamp_rect_origin_too_big_centers(self):
        core = Rect(0, 0, 10, 10)
        big = Rect(0, 0, 20, 4)
        origin = core.clamp_rect_origin(big)
        assert origin.x == pytest.approx(-5)  # centred

    @given(rects())
    def test_clamp_point_idempotent(self, r):
        p = r.clamp_point(Point(1e9, -1e9))
        assert r.clamp_point(p) == p
