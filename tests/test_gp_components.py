"""Tests for GP components: initial placement, inflation, orientation,
clustering."""

import numpy as np
import pytest

from repro.benchgen import BenchmarkSpec, make_benchmark
from repro.db import Design, Net, Node, NodeKind, Pin
from repro.geometry import Orientation, Rect
from repro.gp import (
    CongestionInflator,
    cluster_design,
    initial_placement,
    optimize_macro_orientations,
)
from repro.route import RoutingSpec


def bench(seed=11, **kw):
    spec = BenchmarkSpec(
        name="t", num_cells=200, num_macros=2, num_fixed_macros=1,
        num_terminals=8, seed=seed, **kw,
    )
    return make_benchmark(spec)


class TestInitialPlacement:
    def test_all_inside_core(self):
        d = bench()
        initial_placement(d)
        core = d.core
        for n in d.nodes:
            if n.is_movable:
                assert core.contains_rect(n.rect.inflated(-1e-9))

    def test_fenced_cells_start_in_fence(self):
        d = bench(num_fences=1, fence_level=1)
        initial_placement(d)
        for n in d.nodes:
            if n.region is not None and n.kind is NodeKind.CELL:
                region = d.regions[n.region]
                assert region.contains_point(n.rect.center)

    def test_deterministic(self):
        d1, d2 = bench(), bench()
        initial_placement(d1, seed=3)
        initial_placement(d2, seed=3)
        assert all(
            a.x == b.x and a.y == b.y for a, b in zip(d1.nodes, d2.nodes)
        )

    def test_macros_spread_apart(self):
        d = bench()
        initial_placement(d)
        macros = [n for n in d.nodes if n.kind is NodeKind.MACRO]
        assert len(macros) == 2
        c0, c1 = macros[0].rect.center, macros[1].rect.center
        assert (c0 - c1).norm() > 1.0


class TestInflation:
    def test_requires_routing(self):
        d = Design("t", core=Rect(0, 0, 10, 10))
        d.add_node(Node("a", 1, 1))
        with pytest.raises(ValueError):
            CongestionInflator(d)

    def test_factors_start_at_one(self):
        d = bench()
        inf = CongestionInflator(d)
        assert (inf.factors == 1.0).all()

    def test_update_monotone_ratchet(self):
        d = bench(cap_factor=0.4)  # starved -> congestion
        initial_placement(d)
        inf = CongestionInflator(d)
        arrays = d.pin_arrays()
        cx, cy = d.pull_centers()
        a1 = inf.update(arrays, cx, cy, d.movable_mask()).copy()
        f1 = inf.factors.copy()
        inf.update(arrays, cx, cy, d.movable_mask())
        assert (inf.factors >= f1 - 1e-12).all()

    def test_total_budget_respected(self):
        d = bench(cap_factor=0.05)  # absurdly starved
        initial_placement(d)
        inf = CongestionInflator(d, total_max=1.2)
        arrays = d.pin_arrays()
        cx, cy = d.pull_centers()
        areas = inf.update(arrays, cx, cy, d.movable_mask())
        mask = d.movable_mask()
        assert areas[mask].sum() <= 1.2 * inf.base_areas[mask].sum() + 1e-6

    def test_per_cell_cap(self):
        d = bench(cap_factor=0.05)
        initial_placement(d)
        inf = CongestionInflator(d, max_inflation=2.0, total_max=100.0)
        arrays = d.pin_arrays()
        cx, cy = d.pull_centers()
        inf.update(arrays, cx, cy, d.movable_mask())
        assert (inf.factors <= 2.0 + 1e-9).all()

    def test_uncongested_no_inflation(self):
        d = bench(cap_factor=50.0)  # practically infinite supply
        # a *spread* placement: clumped initial placements are locally
        # congested no matter the capacity
        rng = np.random.default_rng(1)
        core = d.core
        for n in d.nodes:
            if n.is_movable:
                n.move_center_to(
                    float(rng.uniform(core.xl + 2, core.xh - 2)),
                    float(rng.uniform(core.yl + 2, core.yh - 2)),
                )
        inf = CongestionInflator(d, threshold=0.8)
        arrays = d.pin_arrays()
        cx, cy = d.pull_centers()
        inf.update(arrays, cx, cy, d.movable_mask())
        assert inf.mean_inflation == pytest.approx(1.0, abs=0.05)

    def test_congestion_map_shape(self):
        d = bench()
        initial_placement(d)
        inf = CongestionInflator(d)
        cmap = inf.congestion_map(d.pin_arrays(), *d.pull_centers())
        grid = d.routing.grid
        assert cmap.shape == (grid.nx, grid.ny)
        assert (cmap >= 0).all()


class TestOrientation:
    def build(self):
        d = Design("t", core=Rect(0, 0, 40, 40))
        m = d.add_node(Node("mac", 10, 4, kind=NodeKind.MACRO, x=10, y=10))
        t = d.add_node(Node("pad", 0, 0, kind=NodeKind.TERMINAL_NI, x=15, y=40))
        # pin on the macro's right edge; terminal above the macro centre:
        # rotating W moves the pin toward the terminal
        d.add_net(Net("n", pins=[Pin(node=m.index, dx=5.0, dy=0.0), Pin(node=t.index)]))
        return d, m

    def test_rotation_improves(self):
        d, m = self.build()
        before = d.hpwl()
        changed = optimize_macro_orientations(d)
        assert changed == 1
        assert d.hpwl() < before

    def test_respects_rotation_flag(self):
        d, m = self.build()
        changed = optimize_macro_orientations(d, allow_rotation=False, allow_flip=False)
        assert changed == 0
        assert m.orientation is Orientation.N

    def test_idempotent(self):
        d, m = self.build()
        optimize_macro_orientations(d)
        assert optimize_macro_orientations(d) == 0

    def test_ignores_cells(self):
        d = Design("t", core=Rect(0, 0, 10, 10))
        d.add_node(Node("c", 2, 1))
        assert optimize_macro_orientations(d) == 0


class TestClustering:
    def test_reduction_ratio(self):
        d = bench()
        cd = cluster_design(d, ratio=0.4)
        n_cells = sum(1 for n in d.nodes if n.kind is NodeKind.CELL)
        n_coarse = sum(1 for n in cd.coarse.nodes if n.kind is NodeKind.CELL)
        assert n_coarse <= max(1, int(n_cells * 0.55))  # near target

    def test_area_preserved(self):
        d = bench()
        cd = cluster_design(d)
        orig = sum(n.area for n in d.nodes if n.kind is NodeKind.CELL)
        coarse = sum(n.area for n in cd.coarse.nodes if n.kind is NodeKind.CELL)
        assert coarse == pytest.approx(orig, rel=1e-9)

    def test_non_cells_carried_over(self):
        d = bench()
        cd = cluster_design(d)
        for kind in (NodeKind.MACRO, NodeKind.FIXED, NodeKind.TERMINAL_NI):
            assert sum(1 for n in d.nodes if n.kind is kind) == sum(
                1 for n in cd.coarse.nodes if n.kind is kind
            )

    def test_hierarchy_respected(self):
        d = bench()
        cd = cluster_design(d)
        for node in cd.coarse.nodes:
            if node.kind is not NodeKind.CELL or not node.name.startswith("clu_"):
                continue
            members = np.flatnonzero(cd.assignment == node.index)
            modules = {d.nodes[int(m)].module for m in members}
            assert len(modules) == 1

    def test_no_empty_or_degree1_nets(self):
        d = bench()
        cd = cluster_design(d)
        assert all(len({p.node for p in net.pins}) >= 2 for net in cd.coarse.nets)

    def test_transfer_positions(self):
        d = bench()
        cd = cluster_design(d)
        rng = np.random.default_rng(0)
        for n in cd.coarse.nodes:
            if n.is_movable:
                n.move_center_to(float(rng.uniform(5, 30)), float(rng.uniform(5, 30)))
        cd.transfer_positions()
        for node in d.nodes:
            if node.is_movable:
                coarse = cd.coarse.nodes[int(cd.assignment[node.index])]
                assert node.cx == pytest.approx(coarse.cx)
                assert node.cy == pytest.approx(coarse.cy)

    def test_coarse_validates(self):
        d = bench()
        cd = cluster_design(d)
        assert cd.coarse.validate() == []
