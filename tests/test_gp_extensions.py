"""Tests for the routability extensions: look-ahead-router congestion
estimation and congestion-driven net weighting."""

import numpy as np
import pytest

from repro.benchgen import BenchmarkSpec, make_benchmark
from repro.gp import (
    CongestionInflator,
    apply_congestion_net_weights,
    congestion_over_boxes,
    initial_placement,
)


def bench(seed=71, **kw):
    base = dict(
        name="x", num_cells=200, num_macros=1, num_fixed_macros=0,
        num_terminals=8, utilization=0.55, cap_factor=2.0, seed=seed,
    )
    base.update(kw)
    return make_benchmark(BenchmarkSpec(**base))


class TestRouterEstimator:
    def test_router_estimator_map(self):
        d = bench()
        initial_placement(d)
        inf = CongestionInflator(d, estimator="router")
        cmap = inf.congestion_map(d.pin_arrays(), *d.pull_centers())
        grid = d.routing.grid
        assert cmap.shape == (grid.nx, grid.ny)
        assert cmap.max() > 0

    def test_unknown_estimator_raises(self):
        d = bench()
        with pytest.raises(ValueError):
            CongestionInflator(d, estimator="psychic")

    def test_router_and_rudy_correlate(self):
        """Both estimators must agree on where the hot region is."""
        d = bench(congested_band=0.6, cap_factor=1.0)
        # spread placement so demand is meaningful
        rng = np.random.default_rng(0)
        core = d.core
        for n in d.nodes:
            if n.is_movable:
                n.move_center_to(
                    float(rng.uniform(core.xl + 2, core.xh - 2)),
                    float(rng.uniform(core.yl + 2, core.yh - 2)),
                )
        arrays = d.pin_arrays()
        cx, cy = d.pull_centers()
        rudy = CongestionInflator(d, estimator="rudy").congestion_map(arrays, cx, cy)
        routed = CongestionInflator(d, estimator="router").congestion_map(arrays, cx, cy)
        # hottest decile of one map should be clearly hot in the other
        r_hot = rudy >= np.quantile(rudy, 0.9)
        assert routed[r_hot].mean() > routed.mean()


class TestNetWeighting:
    def spread(self, d, seed=0):
        rng = np.random.default_rng(seed)
        core = d.core
        for n in d.nodes:
            if n.is_movable:
                n.move_center_to(
                    float(rng.uniform(core.xl + 2, core.xh - 2)),
                    float(rng.uniform(core.yl + 2, core.yh - 2)),
                )

    def test_congestion_over_boxes_shape(self):
        d = bench()
        self.spread(d)
        cong = np.ones((d.routing.grid.nx, d.routing.grid.ny))
        levels = congestion_over_boxes(d, cong)
        assert len(levels) == len(d.nets)
        active = [n.index for n in d.nets if n.degree >= 2]
        assert all(levels[i] == pytest.approx(1.0) for i in active)

    def test_weights_raised_only_over_hotspots(self):
        d = bench()
        self.spread(d)
        grid = d.routing.grid
        cong = np.zeros((grid.nx, grid.ny))
        cong[:, : grid.ny // 4] = 2.0  # hot bottom band
        before = [net.weight for net in d.nets]
        touched = apply_congestion_net_weights(d, cong, threshold=0.8)
        assert touched > 0
        for net, w0 in zip(d.nets, before):
            assert net.weight >= w0

    def test_no_hotspot_no_change(self):
        d = bench()
        self.spread(d)
        cong = np.zeros((d.routing.grid.nx, d.routing.grid.ny))
        assert apply_congestion_net_weights(d, cong) == 0

    def test_max_weight_cap(self):
        d = bench()
        self.spread(d)
        cong = np.full((d.routing.grid.nx, d.routing.grid.ny), 100.0)
        for _ in range(5):
            apply_congestion_net_weights(d, cong, max_weight=3.0)
        assert max(net.weight for net in d.nets) <= 3.0 + 1e-9

    def test_invalidates_pin_cache(self):
        d = bench()
        self.spread(d)
        a1 = d.pin_arrays()
        cong = np.full((d.routing.grid.nx, d.routing.grid.ny), 100.0)
        assert apply_congestion_net_weights(d, cong) > 0
        a2 = d.pin_arrays()
        assert a2 is not a1
        assert a2.net_weight.max() > 1.0

    def test_requires_routing(self):
        d = bench()
        d.routing = None
        with pytest.raises(ValueError):
            congestion_over_boxes(d, np.zeros((4, 4)))
