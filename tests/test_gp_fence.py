"""Tests for fence-region penalty and projection."""

import numpy as np
import pytest

from repro.db import Design, Node, Region
from repro.geometry import Rect
from repro.gp import FencePenalty, fence_violation, project_into_fences
from repro.wirelength import finite_difference_gradient


def fenced_design():
    d = Design("t", core=Rect(0, 0, 40, 40))
    region = d.add_region(Region("f", rects=[Rect(5, 5, 15, 15)]))
    d.add_node(Node("in", 1, 1, x=8, y=8, region=region.index))
    d.add_node(Node("out", 1, 1, x=30, y=30, region=region.index))
    d.add_node(Node("free", 1, 1, x=20, y=20))
    return d


class TestFencePenalty:
    def test_inactive_without_regions(self):
        d = Design("t", core=Rect(0, 0, 10, 10))
        d.add_node(Node("a", 1, 1))
        assert not FencePenalty(d).active

    def test_inside_zero_penalty(self):
        d = fenced_design()
        fp = FencePenalty(d)
        cx, cy = d.pull_centers()
        v, gx, gy = fp.value_grad(cx, cy)
        assert gx[0] == 0.0 and gy[0] == 0.0  # "in" feels nothing

    def test_outside_quadratic_pull(self):
        d = fenced_design()
        fp = FencePenalty(d)
        cx, cy = d.pull_centers()
        v, gx, gy = fp.value_grad(cx, cy)
        assert v > 0
        assert gx[1] > 0 and gy[1] > 0  # pulled down-left toward fence

    def test_unfenced_untouched(self):
        d = fenced_design()
        fp = FencePenalty(d)
        cx, cy = d.pull_centers()
        _, gx, gy = fp.value_grad(cx, cy)
        assert gx[2] == 0.0 and gy[2] == 0.0

    def test_gradient_matches_fd(self):
        d = fenced_design()
        fp = FencePenalty(d)
        cx, cy = d.pull_centers()
        _, gx, gy = fp.value_grad(cx, cy)
        fgx, fgy = finite_difference_gradient(fp.value, cx, cy)
        assert np.abs(gx - fgx).max() < 1e-5
        assert np.abs(gy - fgy).max() < 1e-5

    def test_targets_account_for_cell_size(self):
        """The target keeps the *outline* inside, not just the centre."""
        d = Design("t", core=Rect(0, 0, 40, 40))
        region = d.add_region(Region("f", rects=[Rect(5, 5, 15, 15)]))
        d.add_node(Node("wide", 4, 2, x=30, y=30, region=region.index))
        fp = FencePenalty(d)
        cx, cy = d.pull_centers()
        idx, tx, ty = fp.targets(cx, cy)
        assert tx[0] <= 15 - 2  # half-width inset
        assert ty[0] <= 15 - 1

    def test_multi_rect_nearest(self):
        d = Design("t", core=Rect(0, 0, 40, 40))
        region = d.add_region(
            Region("f", rects=[Rect(0, 0, 5, 5), Rect(30, 30, 38, 38)])
        )
        d.add_node(Node("a", 1, 1, x=28, y=28, region=region.index))
        fp = FencePenalty(d)
        cx, cy = d.pull_centers()
        idx, tx, ty = fp.targets(cx, cy)
        assert tx[0] >= 30  # nearer rect chosen


class TestViolationAndProjection:
    def test_violation_counts(self):
        d = fenced_design()
        count, dist = fence_violation(d)
        assert count == 1
        assert dist > 0

    def test_projection_fixes_all(self):
        d = fenced_design()
        moved = project_into_fences(d)
        assert moved == 1
        count, dist = fence_violation(d)
        assert count == 0 and dist == 0.0

    def test_projection_idempotent(self):
        d = fenced_design()
        project_into_fences(d)
        assert project_into_fences(d) == 0

    def test_projection_keeps_outline_inside(self):
        d = Design("t", core=Rect(0, 0, 40, 40))
        region = d.add_region(Region("f", rects=[Rect(5, 5, 15, 15)]))
        d.add_node(Node("big", 6, 4, x=30, y=30, region=region.index))
        project_into_fences(d)
        assert region.contains_rect(d.node("big").rect)
