"""Reference-vs-optimized equivalence of the GP hot paths.

Every optimized path introduced by the GP perf overhaul must reproduce
its ``reference=True`` golden twin *bit for bit*: pin-table compaction,
WA/LSE wirelength values and gradients (including the line-search
value/gradient split), bell density values and gradients (small and
large kernels, fixed obstacles, fences), rasterization, full CG
trajectories, and end-to-end placements.  ``benchmarks/bench_gp_perf.py``
asserts the same on the suite designs; these tests keep the guarantee
cheap enough to run on every push.
"""

import numpy as np
import pytest

from repro.benchgen import BenchmarkSpec, make_benchmark
from repro.db import Design, NodeKind
from repro.density.bell import BellDensity
from repro.geometry import Rect
from repro.gp import GPConfig, GlobalPlacer, optimize_macro_orientations
from repro.grids import BinGrid
from repro.optim import minimize_cg
from repro.wirelength.smooth import compaction_for, make_model


def bench(seed=11, cells=200, macros=2, **kw):
    spec = BenchmarkSpec(
        name="t", num_cells=cells, num_macros=macros, num_fixed_macros=1,
        num_terminals=8, seed=seed, **kw,
    )
    return make_benchmark(spec)


def positions(design: Design):
    return (
        np.array([n.cx for n in design.nodes]),
        np.array([n.cy for n in design.nodes]),
        [n.orientation for n in design.nodes],
    )


class TestCompaction:
    @pytest.mark.parametrize("seed", [1, 5, 9])
    def test_vectorized_matches_reference(self, seed):
        arrays = bench(seed=seed).pin_arrays()
        ref = compaction_for(arrays, reference=True)
        opt = compaction_for(arrays, reference=False)
        for attr in ("active", "starts", "weights", "pin_sel", "pin_net", "cstarts"):
            assert np.array_equal(getattr(ref, attr), getattr(opt, attr)), attr

    def test_optimized_compaction_is_cached(self):
        arrays = bench().pin_arrays()
        assert compaction_for(arrays) is compaction_for(arrays)


class TestPinArrays:
    @pytest.mark.parametrize("seed", [1, 5, 9])
    def test_reference_and_fast_tables_identical(self, seed):
        d = bench(seed=seed)
        ref = d.pin_arrays(reference=True)
        d._pin_cache = None  # force a rebuild through the fast path
        opt = d.pin_arrays(reference=False)
        for attr in ("pin_node", "pin_dx", "pin_dy", "net_ptr", "net_weight"):
            assert np.array_equal(getattr(ref, attr), getattr(opt, attr)), attr

    def test_fast_tables_track_orientation_changes(self):
        d = bench()
        macro = next(n for n in d.nodes if n.kind is NodeKind.MACRO)
        from repro.geometry import Orientation

        d.pin_arrays(reference=False)
        d.set_orientation(macro, Orientation.W)
        opt = d.pin_arrays(reference=False)
        d._pin_cache = None
        ref = d.pin_arrays(reference=True)
        assert np.array_equal(ref.pin_dx, opt.pin_dx)
        assert np.array_equal(ref.pin_dy, opt.pin_dy)


class TestWirelengthEquivalence:
    @pytest.mark.parametrize("kind", ["wa", "lse"])
    @pytest.mark.parametrize("seed", [1, 7])
    def test_value_grad_bitwise(self, kind, seed):
        d = bench(seed=seed, cells=300)
        arrays = d.pin_arrays()
        cx, cy = d.pull_centers()
        ref = make_model(kind, arrays, len(d.nodes), 8.0, reference=True)
        opt = make_model(kind, arrays, len(d.nodes), 8.0, reference=False)
        fr, gxr, gyr = ref.value_grad(cx, cy)
        fo, gxo, gyo = opt.value_grad(cx, cy)
        assert fr == fo
        assert np.array_equal(gxr, gxo)
        assert np.array_equal(gyr, gyo)

    @pytest.mark.parametrize("kind", ["wa", "lse"])
    def test_probe_split_matches_value_grad(self, kind):
        d = bench(seed=3, cells=300)
        arrays = d.pin_arrays()
        cx, cy = d.pull_centers()
        opt = make_model(kind, arrays, len(d.nodes), 8.0, reference=False)
        f, gx, gy = opt.value_grad(cx, cy)
        fp = opt.value_probe(cx, cy)
        gxp, gyp = opt.finish_grad()
        assert f == fp
        assert np.array_equal(gx, gxp)
        assert np.array_equal(gy, gyp)

    def test_second_evaluation_reuses_buffers(self):
        d = bench(seed=3, cells=300)
        arrays = d.pin_arrays()
        cx, cy = d.pull_centers()
        ref = make_model("wa", arrays, len(d.nodes), 8.0, reference=True)
        opt = make_model("wa", arrays, len(d.nodes), 8.0, reference=False)
        opt.value_grad(cx, cy)
        f2r, gxr, _ = ref.value_grad(cx + 1.5, cy - 0.5)
        f2o, gxo, _ = opt.value_grad(cx + 1.5, cy - 0.5)
        assert f2r == f2o
        assert np.array_equal(gxr, gxo)

    def test_rebind_keeps_compaction_and_results(self):
        d = bench(seed=3, cells=300)
        arrays = d.pin_arrays()
        cx, cy = d.pull_centers()
        opt = make_model("wa", arrays, len(d.nodes), 8.0, reference=False)
        comp = opt._comp
        opt.rebind(d.pin_arrays())
        assert opt._comp is comp
        ref = make_model("wa", arrays, len(d.nodes), 8.0, reference=True)
        fr, gxr, gyr = ref.value_grad(cx, cy)
        fo, gxo, gyo = opt.value_grad(cx, cy)
        assert fr == fo
        assert np.array_equal(gxr, gxo) and np.array_equal(gyr, gyo)


def _density_pair(design, grid_bins=256):
    grid = BinGrid(design.core, 16, grid_bins // 16)
    w, h = design.placed_sizes()
    movable = design.movable_mask()
    fixed = [
        (n.rect.xl, n.rect.yl, n.rect.xh, n.rect.yh)
        for n in design.nodes
        if n.kind.is_fixed and n.kind.blocks_placement
    ]
    ref = BellDensity(grid, w, h, movable, fixed_rects=fixed, reference=True)
    opt = BellDensity(grid, w, h, movable, fixed_rects=fixed, reference=False)
    return ref, opt


class TestDensityEquivalence:
    @pytest.mark.parametrize(
        "kw",
        [
            {"seed": 1},
            {"seed": 5, "macros": 6, "macro_area_fraction": 0.45},  # macro-heavy
            {"seed": 9, "num_fences": 2},
        ],
    )
    def test_value_grad_bitwise(self, kw):
        d = bench(cells=250, **kw)
        cx, cy = d.pull_centers()
        ref, opt = _density_pair(d)
        fr, gxr, gyr = ref.value_grad(cx, cy)
        fo, gxo, gyo = opt.value_grad(cx, cy)
        assert fr == fo
        assert np.array_equal(gxr, gxo)
        assert np.array_equal(gyr, gyo)

    def test_potential_field_bitwise(self):
        d = bench(seed=5, cells=250, macros=6, macro_area_fraction=0.45)
        cx, cy = d.pull_centers()
        ref, opt = _density_pair(d)
        phi_r, _, _ = ref.potential(cx, cy)
        phi_o, _, _ = opt.potential(cx, cy)
        assert np.array_equal(phi_r, phi_o)

    def test_probe_split_matches_value_grad(self):
        d = bench(seed=5, cells=250, macros=6, macro_area_fraction=0.45)
        cx, cy = d.pull_centers()
        ref, opt = _density_pair(d)
        f, gx, gy = ref.value_grad(cx, cy)
        fp = opt.value_probe(cx, cy)
        gxp, gyp = opt.finish_grad()
        assert f == fp
        assert np.array_equal(gx, gxp)
        assert np.array_equal(gy, gyp)

    def test_second_evaluation_reuses_buffers(self):
        d = bench(seed=5, cells=250, macros=6, macro_area_fraction=0.45)
        cx, cy = d.pull_centers()
        ref, opt = _density_pair(d)
        opt.value_grad(cx, cy)
        fr, gxr, gyr = ref.value_grad(cx + 2.0, cy + 1.0)
        fo, gxo, gyo = opt.value_grad(cx + 2.0, cy + 1.0)
        assert fr == fo
        assert np.array_equal(gxr, gxo) and np.array_equal(gyr, gyo)


class TestRasterizeEquivalence:
    def test_mixed_sizes_bitwise(self):
        rng = np.random.default_rng(3)
        grid = BinGrid(Rect(0, 0, 100, 80), 25, 20)
        n = 300
        xl = rng.uniform(-5, 95, n)
        yl = rng.uniform(-5, 75, n)
        xh = xl + rng.uniform(0.5, 30, n)  # cells through macro-sized rects
        yh = yl + rng.uniform(0.5, 24, n)
        vals = rng.uniform(0.1, 2.0, n)
        ref = grid.rasterize_rects(xl, yl, xh, yh, vals, reference=True)
        opt = grid.rasterize_rects(xl, yl, xh, yh, vals, reference=False)
        assert np.array_equal(ref, opt)


class TestCGEquivalence:
    def test_trajectory_bitwise_on_rosenbrock(self):
        def vg(x):
            f = 100.0 * (x[1] - x[0] ** 2) ** 2 + (1 - x[0]) ** 2
            g = np.array(
                [
                    -400.0 * x[0] * (x[1] - x[0] ** 2) - 2.0 * (1 - x[0]),
                    200.0 * (x[1] - x[0] ** 2),
                ]
            )
            return f, g

        x0 = np.array([-1.2, 1.0])
        ref = minimize_cg(vg, x0, max_iter=60, step_init=0.1, record=True, reference=True)
        opt = minimize_cg(vg, x0, max_iter=60, step_init=0.1, record=True, reference=False)
        assert ref.trajectory == opt.trajectory
        assert np.array_equal(ref.x, opt.x)
        assert ref.iterations == opt.iterations

    def test_probe_protocol_matches_plain_objective(self):
        calls = {"probe": 0, "finish": 0}

        def vg(x):
            f = float(np.sum((x - 3.0) ** 4 + 0.5 * x * x))
            g = 4.0 * (x - 3.0) ** 3 + x
            return f, g

        def probed(x):
            return vg(x)

        def probe(x):
            calls["probe"] += 1
            f, g = vg(x)
            probe.grad = g
            return f

        def finish():
            calls["finish"] += 1
            return probe.grad

        probed.probe = probe
        probed.finish_grad = finish
        x0 = np.linspace(-2, 2, 7)
        plain = minimize_cg(vg, x0.copy(), max_iter=40, step_init=0.2, record=True)
        split = minimize_cg(probed, x0.copy(), max_iter=40, step_init=0.2, record=True)
        assert plain.trajectory == split.trajectory
        assert np.array_equal(plain.x, split.x)
        assert calls["probe"] > 0 and calls["finish"] > 0
        assert calls["finish"] <= calls["probe"]  # rejected probes skip gradients


class TestOrientationEquivalence:
    @pytest.mark.parametrize("seed", [2, 6])
    def test_orientation_decisions_identical(self, seed):
        d_ref = bench(seed=seed, macros=4)
        d_opt = bench(seed=seed, macros=4)
        changed_ref = optimize_macro_orientations(d_ref, reference=True)
        changed_opt = optimize_macro_orientations(d_opt, reference=False)
        assert changed_ref == changed_opt
        assert [n.orientation for n in d_ref.nodes] == [
            n.orientation for n in d_opt.nodes
        ]


class TestEndToEndEquivalence:
    @pytest.mark.parametrize(
        "kw, cfg_kw",
        [
            ({"seed": 11, "cells": 220, "macros": 4}, {}),
            ({"seed": 5, "cells": 160, "macros": 3, "num_fences": 2}, {}),
            ({"seed": 7, "cells": 180, "macros": 2}, {"wirelength_model": "lse"}),
        ],
    )
    def test_final_placements_bitwise(self, kw, cfg_kw):
        results = {}
        for reference in (False, True):
            d = bench(**kw)
            GlobalPlacer(GPConfig(reference=reference, **cfg_kw)).place(d)
            results[reference] = positions(d)
        assert np.array_equal(results[False][0], results[True][0])
        assert np.array_equal(results[False][1], results[True][1])
        assert results[False][2] == results[True][2]
