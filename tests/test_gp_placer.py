"""End-to-end tests for the global placer."""

import numpy as np
import pytest

from repro.benchgen import BenchmarkSpec, make_benchmark
from repro.db import Design, NodeKind
from repro.density import density_overflow
from repro.gp import GlobalPlacer, GPConfig, fence_violation
from repro.geometry import Rect


def bench(seed=21, cells=300, **kw):
    spec = BenchmarkSpec(
        name="t", num_cells=cells, num_macros=2, num_fixed_macros=1,
        num_terminals=16, utilization=0.6, seed=seed, **kw,
    )
    return make_benchmark(spec)


def fast_cfg(**kw):
    base = dict(
        clustering=False,
        max_outer_iterations=14,
        inner_iterations=16,
        routability=False,
        optimize_orientations=False,
    )
    base.update(kw)
    return GPConfig(**base)


class TestPlacement:
    def test_overflow_decreases(self):
        d = bench()
        report = GlobalPlacer(fast_cfg()).place(d)
        assert report.num_iterations >= 2
        first = report.iterations[0].overflow
        last = report.iterations[-1].overflow
        assert last < first

    def test_final_positions_inside_core(self):
        d = bench()
        GlobalPlacer(fast_cfg()).place(d)
        core = d.core
        for n in d.nodes:
            if n.is_movable:
                r = n.rect
                assert r.xl >= core.xl - 1e-6 and r.xh <= core.xh + 1e-6
                assert r.yl >= core.yl - 1e-6 and r.yh <= core.yh + 1e-6

    def test_beats_random_hpwl(self):
        d = bench(seed=22)
        GlobalPlacer(fast_cfg()).place(d)
        placed = d.hpwl()
        d2 = bench(seed=22)
        rng = np.random.default_rng(0)
        core = d2.core
        for n in d2.nodes:
            if n.is_movable:
                n.move_center_to(
                    float(rng.uniform(core.xl + 2, core.xh - 2)),
                    float(rng.uniform(core.yl + 2, core.yh - 2)),
                )
        assert placed < 0.7 * d2.hpwl()

    def test_fixed_nodes_untouched(self):
        d = bench(seed=23)
        before = {n.index: (n.x, n.y) for n in d.nodes if not n.is_movable}
        GlobalPlacer(fast_cfg()).place(d)
        for idx, (x, y) in before.items():
            assert (d.nodes[idx].x, d.nodes[idx].y) == (x, y)

    def test_deterministic(self):
        r = []
        for _ in range(2):
            d = bench(seed=24)
            GlobalPlacer(fast_cfg()).place(d)
            r.append(d.hpwl())
        assert r[0] == pytest.approx(r[1])

    def test_empty_design(self):
        d = Design("t", core=Rect(0, 0, 10, 10))
        report = GlobalPlacer(fast_cfg()).place(d)
        assert report.num_iterations == 0

    def test_report_trajectory_monotone_overflow_trend(self):
        d = bench(seed=25)
        report = GlobalPlacer(fast_cfg(max_outer_iterations=20)).place(d)
        ovfl = [it.overflow for it in report.iterations]
        # overall trend must be down (allow local wobble)
        assert ovfl[-1] <= ovfl[0]
        assert min(ovfl) == pytest.approx(ovfl[-1], abs=0.1)


class TestFences:
    def test_fenced_cells_end_inside(self):
        d = bench(seed=26, cells=400, num_fences=1, fence_level=1)
        GlobalPlacer(fast_cfg(max_outer_iterations=18)).place(d)
        count, dist = fence_violation(d)
        assert count == 0

    def test_freeze_macros_keeps_them(self):
        d = bench(seed=27)
        GlobalPlacer(fast_cfg()).place(d)
        macro_pos = {
            n.index: (n.x, n.y) for n in d.nodes if n.kind is NodeKind.MACRO
        }
        GlobalPlacer(fast_cfg(freeze_macros=True, max_outer_iterations=4)).place(
            d, warm_start=True
        )
        for idx, (x, y) in macro_pos.items():
            assert (d.nodes[idx].x, d.nodes[idx].y) == pytest.approx((x, y))


class TestWirelengthModels:
    @pytest.mark.parametrize("model", ["wa", "lse"])
    def test_both_models_converge(self, model):
        d = bench(seed=28)
        report = GlobalPlacer(fast_cfg(wirelength_model=model)).place(d)
        assert report.iterations[-1].overflow < report.iterations[0].overflow


class TestRoutabilityMode:
    def test_inflation_engages_on_congested(self):
        d = bench(seed=29, cells=400, cap_factor=1.0, congested_band=0.5)
        cfg = fast_cfg(routability=True, max_outer_iterations=20)
        report = GlobalPlacer(cfg).place(d)
        assert report.iterations[-1].mean_inflation > 1.0

    def test_routability_off_no_inflation(self):
        d = bench(seed=29, cells=400, cap_factor=1.0, congested_band=0.5)
        report = GlobalPlacer(fast_cfg(max_outer_iterations=12)).place(d)
        assert all(it.mean_inflation == 1.0 for it in report.iterations)


class TestClusteredVcycle:
    def test_clustered_run_matches_quality(self):
        d1 = bench(seed=30, cells=600)
        cfg = fast_cfg(max_outer_iterations=20)
        GlobalPlacer(cfg).place(d1)
        flat_hpwl = d1.hpwl()
        d2 = bench(seed=30, cells=600)
        cfg2 = fast_cfg(
            clustering=True, cluster_min_nodes=100, max_outer_iterations=20
        )
        report = GlobalPlacer(cfg2).place(d2)
        assert report.coarse_iterations  # V-cycle actually ran
        assert d2.hpwl() < 1.6 * flat_hpwl
        assert density_overflow(d2) < 0.35
