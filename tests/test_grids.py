"""Tests for the bin grid and its rasterization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect
from repro.grids import BinGrid


def grid16():
    return BinGrid(Rect(0, 0, 16, 8), 16, 8)


class TestConstruction:
    def test_bin_dims(self):
        g = grid16()
        assert g.bin_w == 1.0 and g.bin_h == 1.0
        assert g.num_bins == 128

    def test_invalid_dims_raise(self):
        with pytest.raises(ValueError):
            BinGrid(Rect(0, 0, 1, 1), 0, 4)

    def test_degenerate_area_raises(self):
        with pytest.raises(ValueError):
            BinGrid(Rect(0, 0, 0, 1), 4, 4)

    def test_with_bin_target_respects_aspect(self):
        g = BinGrid.with_bin_target(Rect(0, 0, 100, 25), 64)
        assert g.nx > g.ny
        assert 32 <= g.nx * g.ny <= 128


class TestIndexing:
    def test_index_of_center(self):
        g = grid16()
        ix, iy = g.index_of(3.5, 2.5)
        assert (ix, iy) == (3, 2)

    def test_index_clamped(self):
        g = grid16()
        ix, iy = g.index_of(-5.0, 100.0)
        assert (ix, iy) == (0, 7)

    def test_bin_rect(self):
        r = grid16().bin_rect(2, 3)
        assert (r.xl, r.yl, r.xh, r.yh) == (2, 3, 3, 4)

    def test_centers(self):
        g = grid16()
        assert g.centers_x()[0] == 0.5
        assert g.centers_y()[-1] == 7.5


class TestAddRect:
    def test_exact_cover_single_bin(self):
        g = grid16()
        acc = g.zeros()
        g.add_rect(acc, Rect(2, 3, 3, 4))
        assert acc[2, 3] == pytest.approx(1.0)
        assert acc.sum() == pytest.approx(1.0)

    def test_partial_cover_split(self):
        g = grid16()
        acc = g.zeros()
        g.add_rect(acc, Rect(1.5, 1.0, 2.5, 2.0))
        assert acc[1, 1] == pytest.approx(0.5)
        assert acc[2, 1] == pytest.approx(0.5)

    def test_value_scaling(self):
        g = grid16()
        acc = g.zeros()
        g.add_rect(acc, Rect(0, 0, 1, 1), value=3.0)
        assert acc[0, 0] == pytest.approx(3.0)

    def test_outside_ignored(self):
        g = grid16()
        acc = g.zeros()
        g.add_rect(acc, Rect(100, 100, 101, 101))
        assert acc.sum() == 0

    def test_clipped_at_boundary(self):
        g = grid16()
        acc = g.zeros()
        g.add_rect(acc, Rect(-1, -1, 1, 1))
        assert acc.sum() == pytest.approx(1.0)  # only in-grid quarter


class TestRasterizeRects:
    def test_matches_add_rect(self):
        g = grid16()
        rects = [Rect(0.3, 0.2, 2.7, 1.9), Rect(5, 5, 9.5, 7.5)]
        acc = g.zeros()
        for r in rects:
            g.add_rect(acc, r)
        vec = g.rasterize_rects(
            np.array([r.xl for r in rects]),
            np.array([r.yl for r in rects]),
            np.array([r.xh for r in rects]),
            np.array([r.yh for r in rects]),
        )
        assert np.allclose(acc, vec)

    def test_empty_input(self):
        g = grid16()
        out = g.rasterize_rects(np.array([]), np.array([]), np.array([]), np.array([]))
        assert out.sum() == 0

    def test_values_weighting(self):
        g = grid16()
        out = g.rasterize_rects(
            np.array([0.0]), np.array([0.0]), np.array([2.0]), np.array([1.0]),
            values=np.array([4.0]),
        )
        # value x area semantics: 2x1 rect at density 4 -> total mass 8
        assert out.sum() == pytest.approx(8.0)
        assert out[0, 0] == pytest.approx(4.0)

    def test_multi_matches_single_calls(self):
        rng = np.random.default_rng(8)
        g = grid16()
        n = 50
        xl = rng.uniform(-1, 14, n)
        yl = rng.uniform(-1, 7, n)
        xh = xl + rng.uniform(0.0, 6, n)
        yh = yl + rng.uniform(0.0, 3, n)
        v1 = rng.uniform(0, 2, n)
        v2 = rng.uniform(0, 5, n)
        m1, m2 = g.rasterize_rects_multi(xl, yl, xh, yh, values=[v1, v2])
        assert np.allclose(m1, g.rasterize_rects(xl, yl, xh, yh, values=v1))
        assert np.allclose(m2, g.rasterize_rects(xl, yl, xh, yh, values=v2))

    def test_multi_reuses_out_buffers(self):
        g = grid16()
        xl, yl = np.array([1.0]), np.array([1.0])
        xh, yh = np.array([3.0]), np.array([2.0])
        b1, b2 = g.zeros() + 9.0, g.zeros() + 9.0
        m1, m2 = g.rasterize_rects_multi(
            xl, yl, xh, yh, values=[np.array([1.0]), np.array([2.0])],
            outs=[b1, b2],
        )
        assert m1 is b1 and m2 is b2
        assert m1.sum() == pytest.approx(2.0)
        assert m2.sum() == pytest.approx(4.0)

    def test_multi_empty_and_mismatch(self):
        g = grid16()
        empty = np.array([])
        grids = g.rasterize_rects_multi(empty, empty, empty, empty, values=[empty])
        assert grids[0].sum() == 0.0
        with pytest.raises(ValueError, match="outs"):
            g.rasterize_rects_multi(
                empty, empty, empty, empty, values=[empty], outs=[]
            )

    def test_multi_deterministic(self):
        rng = np.random.default_rng(3)
        g = grid16()
        n = 30
        xl = rng.uniform(0, 12, n)
        yl = rng.uniform(0, 6, n)
        xh = xl + rng.uniform(0.1, 4, n)
        yh = yl + rng.uniform(0.1, 2, n)
        v = rng.uniform(0, 1, n)
        a = g.rasterize_rects_multi(xl, yl, xh, yh, values=[v])[0]
        b = g.rasterize_rects_multi(xl, yl, xh, yh, values=[v])[0]
        assert np.array_equal(a, b)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(0, 14, allow_nan=False),
                st.floats(0, 6, allow_nan=False),
                st.floats(0.1, 4, allow_nan=False),
                st.floats(0.1, 2, allow_nan=False),
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_mass_conservation(self, rects):
        """Total rasterized mass equals total (in-grid) rect area."""
        g = grid16()
        xl = np.array([r[0] for r in rects])
        yl = np.array([r[1] for r in rects])
        xh = np.minimum(xl + np.array([r[2] for r in rects]), 16.0)
        yh = np.minimum(yl + np.array([r[3] for r in rects]), 8.0)
        out = g.rasterize_rects(xl, yl, xh, yh)
        assert out.sum() == pytest.approx(float(((xh - xl) * (yh - yl)).sum()), rel=1e-9)


class TestBilinear:
    def test_constant_field(self):
        g = grid16()
        field = np.full((16, 8), 3.0)
        assert g.bilinear_sample(field, 7.3, 2.9) == pytest.approx(3.0)

    def test_linear_field_exact(self):
        g = grid16()
        field = np.outer(g.centers_x(), np.ones(8))
        # A field linear in x is reproduced exactly between bin centres.
        assert g.bilinear_sample(field, 5.0, 4.0) == pytest.approx(5.0)

    def test_clamps_outside(self):
        g = grid16()
        field = np.zeros((16, 8))
        field[0, 0] = 2.0
        v = g.bilinear_sample(field, -10.0, -10.0)
        assert v == pytest.approx(2.0)
