"""Tests for Bookshelf I/O (round-trip and format details)."""

import os

import numpy as np
import pytest

from repro.benchgen import BenchmarkSpec, make_benchmark
from repro.db import Design, Net, Node, NodeKind, Pin, Region, Row
from repro.geometry import Orientation, Rect
from repro.io import read_aux, read_bookshelf, write_bookshelf


@pytest.fixture
def bench_design():
    return make_benchmark(
        BenchmarkSpec(
            name="io_t", num_cells=120, num_macros=2, num_fixed_macros=1,
            num_terminals=8, num_fences=1, fence_level=1, seed=9,
        )
    )


class TestRoundTrip:
    def test_counts(self, bench_design, tmp_path):
        aux = write_bookshelf(bench_design, str(tmp_path))
        d2 = read_bookshelf(aux)
        assert len(d2.nodes) == len(bench_design.nodes)
        assert len(d2.nets) == len(bench_design.nets)
        assert len(d2.rows) == len(bench_design.rows)
        assert len(d2.regions) == len(bench_design.regions)

    def test_hpwl_preserved(self, bench_design, tmp_path):
        aux = write_bookshelf(bench_design, str(tmp_path))
        d2 = read_bookshelf(aux)
        assert d2.hpwl() == pytest.approx(bench_design.hpwl(), rel=1e-5)

    def test_kinds_preserved(self, bench_design, tmp_path):
        aux = write_bookshelf(bench_design, str(tmp_path))
        d2 = read_bookshelf(aux)
        for a, b in zip(bench_design.nodes, d2.nodes):
            assert a.name == b.name
            if a.kind is NodeKind.FIXED:
                assert b.kind is NodeKind.FIXED
            elif a.kind is NodeKind.MACRO:
                # recovered via the taller-than-a-row convention
                assert b.kind is NodeKind.MACRO
            elif a.kind is NodeKind.TERMINAL_NI:
                assert b.kind is NodeKind.TERMINAL_NI

    def test_positions_preserved(self, bench_design, tmp_path):
        aux = write_bookshelf(bench_design, str(tmp_path))
        d2 = read_bookshelf(aux)
        for a, b in zip(bench_design.nodes, d2.nodes):
            assert a.x == pytest.approx(b.x, abs=1e-5)
            assert a.y == pytest.approx(b.y, abs=1e-5)

    def test_routing_preserved(self, bench_design, tmp_path):
        aux = write_bookshelf(bench_design, str(tmp_path))
        d2 = read_bookshelf(aux)
        assert d2.routing is not None
        assert d2.routing.grid.nx == bench_design.routing.grid.nx
        assert np.allclose(d2.routing.hcap, bench_design.routing.hcap)
        assert np.allclose(d2.routing.vcap, bench_design.routing.vcap)

    def test_regions_and_members(self, bench_design, tmp_path):
        aux = write_bookshelf(bench_design, str(tmp_path))
        d2 = read_bookshelf(aux)
        assert [n.region for n in d2.nodes] == [n.region for n in bench_design.nodes]

    def test_hierarchy_preserved(self, bench_design, tmp_path):
        aux = write_bookshelf(bench_design, str(tmp_path))
        d2 = read_bookshelf(aux)
        assert [n.module for n in d2.nodes] == [n.module for n in bench_design.nodes]

    def test_net_weights_preserved(self, tmp_path):
        d = Design("w", core=Rect(0, 0, 10, 10))
        d.add_row(Row(y=0, height=1, site_width=0.25, x_min=0, num_sites=40))
        d.add_node(Node("a", 1, 1))
        d.add_node(Node("b", 1, 1))
        d.add_net(Net("n", pins=[Pin(node=0), Pin(node=1)], weight=3.5))
        aux = write_bookshelf(d, str(tmp_path))
        d2 = read_bookshelf(aux)
        assert d2.net("n").weight == pytest.approx(3.5)


class TestAux:
    def test_read_aux_maps_extensions(self, bench_design, tmp_path):
        aux = write_bookshelf(bench_design, str(tmp_path))
        files = read_aux(aux)
        for ext in ("nodes", "nets", "pl", "scl", "wts", "route", "regions", "hier"):
            assert ext in files
            assert os.path.exists(files[ext])

    def test_basename_override(self, bench_design, tmp_path):
        aux = write_bookshelf(bench_design, str(tmp_path), basename="zzz")
        assert os.path.basename(aux) == "zzz.aux"


class TestOrientations:
    def test_orientation_roundtrip(self, tmp_path):
        d = Design("o", core=Rect(0, 0, 10, 10))
        d.add_row(Row(y=0, height=1, site_width=0.25, x_min=0, num_sites=40))
        n = d.add_node(Node("m", 2, 1, kind=NodeKind.FIXED))
        n.orientation = Orientation.FS
        aux = write_bookshelf(d, str(tmp_path))
        d2 = read_bookshelf(aux)
        assert d2.node("m").orientation is Orientation.FS
