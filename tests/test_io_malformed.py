"""Malformed-input and degenerate-design tests.

Every corrupted Bookshelf file must fail with a ``ValueError`` naming
the file and line number; degenerate but well-formed designs (empty,
all-macro, fully fenced) must flow end to end without an unhandled
exception.
"""

import math
import os
import re

import pytest

from repro.benchgen import BenchmarkSpec, make_benchmark
from repro.db import Design, Net, Node, NodeKind, Pin, Region, Row
from repro.dp import DPConfig
from repro.flow import FlowConfig, FlowResult, NTUplace4H
from repro.geometry import Rect
from repro.io import read_bookshelf, write_bookshelf
from repro.resilience import validate_design


@pytest.fixture(scope="module")
def bench_dir(tmp_path_factory):
    d = make_benchmark(
        BenchmarkSpec(
            name="m", num_cells=40, num_macros=1, num_fences=1,
            num_terminals=6, seed=11,
        )
    )
    out = str(tmp_path_factory.mktemp("bookshelf"))
    write_bookshelf(d, out)
    return out


def corrupted_copy(bench_dir, tmp_path, ext, mutate):
    """Copy the benchmark, run ``mutate`` over one file's lines."""
    import shutil

    dst = str(tmp_path / "bad")
    shutil.copytree(bench_dir, dst)
    path = os.path.join(dst, f"m.{ext}")
    lines = open(path).read().splitlines()
    open(path, "w").write("\n".join(mutate(lines)) + "\n")
    return os.path.join(dst, "m.aux")


def _truncate_node_line(lines):
    # Chop a node line down to its name, as a truncated download would.
    for i, line in enumerate(lines):
        if re.match(r"\s+c\d+ ", line):
            lines[i] = line.split()[0]
            return lines
    raise AssertionError("no node line found")


def _corrupt_node_float(lines):
    for i, line in enumerate(lines):
        if re.match(r"\s+c\d+ ", line):
            parts = line.split()
            parts[1] = "wide"
            lines[i] = " ".join(parts)
            return lines
    raise AssertionError("no node line found")


def _unknown_pin_node(lines):
    for i, line in enumerate(lines):
        if re.match(r"\s+c\d+ [IOB] :", line):
            lines[i] = line.replace(line.split()[0], "ghost", 1)
            return lines
    raise AssertionError("no pin line found")


def _drop_first_netdegree(lines):
    for i, line in enumerate(lines):
        if line.startswith("NetDegree"):
            del lines[i]
            return lines
    raise AssertionError("no NetDegree line found")


def _corrupt_pin_offset(lines):
    for i, line in enumerate(lines):
        if re.match(r"\s+c\d+ [IOB] :", line):
            parts = line.split()
            parts[3] = "left"
            lines[i] = " ".join(parts)
            return lines
    raise AssertionError("no pin line found")


def _corrupt_pl_float(lines):
    for i, line in enumerate(lines):
        if re.match(r"c\d+ ", line):
            parts = line.split()
            parts[1] = "here"
            lines[i] = " ".join(parts)
            return lines
    raise AssertionError("no placement line found")


def _unknown_pl_node(lines):
    for i, line in enumerate(lines):
        if re.match(r"c\d+ ", line):
            lines[i] = "ghost " + line.split(" ", 1)[1]
            return lines
    raise AssertionError("no placement line found")


def _drop_row_coordinate(lines):
    for i, line in enumerate(lines):
        if line.strip().startswith("Coordinate"):
            del lines[i]
            return lines
    raise AssertionError("no Coordinate line found")


class TestMalformedFiles:
    @pytest.mark.parametrize(
        "ext,mutate,match",
        [
            ("nodes", _truncate_node_line, r"m\.nodes:\d+: expected"),
            ("nodes", _corrupt_node_float, r"m\.nodes:\d+: .*wide"),
            ("nets", _unknown_pin_node, r"m\.nets:\d+: pin on unknown node"),
            ("nets", _drop_first_netdegree, r"m\.nets:\d+: pin line before"),
            ("nets", _corrupt_pin_offset, r"m\.nets:\d+: .*left"),
            ("pl", _corrupt_pl_float, r"m\.pl:\d+: .*here"),
            ("pl", _unknown_pl_node, r"m\.pl:\d+: unknown node"),
            ("scl", _drop_row_coordinate, r"m\.scl:\d+: CoreRow missing"),
        ],
        ids=[
            "nodes-truncated", "nodes-bad-float", "nets-unknown-node",
            "nets-pin-before-degree", "nets-bad-offset", "pl-bad-float",
            "pl-unknown-node", "scl-missing-key",
        ],
    )
    def test_error_names_file_and_line(self, bench_dir, tmp_path, ext, mutate, match):
        aux = corrupted_copy(bench_dir, tmp_path, ext, mutate)
        with pytest.raises(ValueError, match=match):
            read_bookshelf(aux)

    def test_clean_roundtrip_still_reads(self, bench_dir):
        design = read_bookshelf(os.path.join(bench_dir, "m.aux"))
        assert design.num_nodes > 0 and design.num_nets > 0


def degenerate_flow_cfg() -> FlowConfig:
    cfg = FlowConfig()
    cfg.gp.clustering = False
    cfg.gp.max_outer_iterations = 8
    cfg.gp.inner_iterations = 10
    cfg.refine_outer_iterations = 4
    cfg.dp = DPConfig(rounds=1, congestion_aware=False)
    return cfg


class TestDegenerateDesigns:
    """Well-formed but extreme designs must never crash the flow."""

    def run_flow(self, design) -> FlowResult:
        result = NTUplace4H(degenerate_flow_cfg()).run(design, route=False)
        assert isinstance(result, FlowResult)
        for entry in result.degradation:
            assert "stage" in entry and "reason" in entry
        return result

    def test_empty_design(self):
        d = Design("empty")
        for r in range(4):
            d.add_row(Row(y=float(r), height=1.0, site_width=1.0, x_min=0.0,
                          num_sites=20))
        result = self.run_flow(d)
        assert result.hpwl_final == 0.0

    def test_no_movable_cells(self):
        d = Design("frozen")
        for r in range(4):
            d.add_row(Row(y=float(r), height=1.0, site_width=1.0, x_min=0.0,
                          num_sites=20))
        a = d.add_node(Node("t0", 2, 1, x=1, y=1, kind=NodeKind.FIXED))
        b = d.add_node(Node("t1", 2, 1, x=10, y=2, kind=NodeKind.FIXED))
        net = Net(name="n0")
        net.pins.append(Pin(node=a.index, dx=0.0, dy=0.0))
        net.pins.append(Pin(node=b.index, dx=0.0, dy=0.0))
        d.add_net(net)
        result = self.run_flow(d)
        assert result.hpwl_final > 0

    def test_all_macro_design(self):
        d = Design("macros")
        for r in range(24):
            d.add_row(Row(y=float(r), height=1.0, site_width=1.0, x_min=0.0,
                          num_sites=48))
        macros = [
            d.add_node(
                Node(f"m{k}", 6.0, 4.0, x=8.0 * k + 1, y=3.0 * k + 1,
                     kind=NodeKind.MACRO)
            )
            for k in range(4)
        ]
        for a, b in zip(macros, macros[1:]):
            net = Net(name=f"n{a.index}")
            net.pins.append(Pin(node=a.index, dx=0.0, dy=0.0))
            net.pins.append(Pin(node=b.index, dx=0.0, dy=0.0))
            d.add_net(net)
        result = self.run_flow(d)
        for m in macros:
            assert math.isfinite(m.x) and math.isfinite(m.y)

    def test_fence_tiled_core(self):
        # The entire core is tiled by two fences and every cell is bound
        # to one of them — no free area at all.
        d = Design("tiled")
        for r in range(12):
            d.add_row(Row(y=float(r), height=1.0, site_width=1.0, x_min=0.0,
                          num_sites=40))
        core = d.core
        mid = core.xl + core.width / 2.0
        left = d.add_region(
            Region("left", rects=[Rect(core.xl, core.yl, mid, core.yh)])
        )
        right = d.add_region(
            Region("right", rects=[Rect(mid, core.yl, core.xh, core.yh)])
        )
        rng_nodes = []
        for k in range(40):
            region = left if k % 2 == 0 else right
            rng_nodes.append(
                d.add_node(
                    Node(f"c{k}", 1.5, 1.0, x=1.0 + k % 30, y=float(k % 10),
                         region=region.index)
                )
            )
        for a, b in zip(rng_nodes, rng_nodes[1:]):
            net = Net(name=f"n{a.index}")
            net.pins.append(Pin(node=a.index, dx=0.0, dy=0.0))
            net.pins.append(Pin(node=b.index, dx=0.0, dy=0.0))
            d.add_net(net)
        assert validate_design(d).ok
        result = self.run_flow(d)
        assert math.isfinite(result.hpwl_final)
