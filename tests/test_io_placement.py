"""Tests for standalone .pl checkpointing and reader robustness."""

import os

import pytest

from repro.benchgen import BenchmarkSpec, make_benchmark
from repro.db import NodeKind
from repro.geometry import Orientation
from repro.io import apply_pl, write_pl


@pytest.fixture
def design():
    d = make_benchmark(
        BenchmarkSpec(name="pl", num_cells=60, num_macros=1, num_fixed_macros=1,
                      num_terminals=4, seed=19)
    )
    # give it a distinctive placement
    for k, n in enumerate(d.nodes):
        if n.is_movable:
            n.move_center_to(5.0 + (k % 7), 5.0 + (k % 5))
    return d


class TestRoundTrip:
    def test_positions_roundtrip(self, design, tmp_path):
        path = str(tmp_path / "snap.pl")
        write_pl(design, path)
        snapshot = {n.name: (n.x, n.y) for n in design.nodes}
        # scramble, then restore
        for n in design.nodes:
            if n.is_movable:
                n.x += 3.0
        applied = apply_pl(design, path)
        assert applied == sum(1 for n in design.nodes if n.is_movable)
        for n in design.nodes:
            assert (n.x, n.y) == pytest.approx(snapshot[n.name])

    def test_orientation_roundtrip(self, design, tmp_path):
        mac = next(n for n in design.nodes if n.kind is NodeKind.MACRO)
        design.set_orientation(mac, Orientation.W)
        path = str(tmp_path / "o.pl")
        write_pl(design, path)
        design.set_orientation(mac, Orientation.N)
        apply_pl(design, path)
        assert mac.orientation is Orientation.W

    def test_fixed_nodes_never_moved(self, design, tmp_path):
        path = str(tmp_path / "f.pl")
        write_pl(design, path)
        # hand-edit the fixed node's line
        fixed = next(n for n in design.nodes if n.kind is NodeKind.FIXED)
        text = open(path).read().replace(
            f"{fixed.name} {fixed.x:.6f}", f"{fixed.name} 999.0"
        )
        open(path, "w").write(text)
        before = (fixed.x, fixed.y)
        apply_pl(design, path)
        assert (fixed.x, fixed.y) == before

    def test_unknown_node_strict_raises(self, design, tmp_path):
        path = str(tmp_path / "u.pl")
        with open(path, "w") as f:
            f.write("UCLA pl 1.0\n\nghost 1.0 2.0 : N\n")
        with pytest.raises(ValueError, match=r"u\.pl:3: .*ghost"):
            apply_pl(design, path)

    def test_unknown_node_lenient_skips(self, design, tmp_path):
        path = str(tmp_path / "u.pl")
        with open(path, "w") as f:
            f.write("UCLA pl 1.0\n\nghost 1.0 2.0 : N\nc0 3.0 4.0 : N\n")
        assert apply_pl(design, path, strict=False) == 1
        assert design.node("c0").x == pytest.approx(3.0)

    def test_comments_and_blank_lines(self, design, tmp_path):
        path = str(tmp_path / "c.pl")
        with open(path, "w") as f:
            f.write("UCLA pl 1.0\n# comment\n\nc1 7.25 3.0 : N # trailing\n")
        assert apply_pl(design, path, strict=False) == 1
        assert design.node("c1").x == pytest.approx(7.25)

    def test_hpwl_identical_after_roundtrip(self, design, tmp_path):
        path = str(tmp_path / "h.pl")
        write_pl(design, path)
        before = design.hpwl()
        for n in design.nodes:
            if n.is_movable:
                n.x += 1.0
        apply_pl(design, path)
        assert design.hpwl() == pytest.approx(before)
