"""Tests for macro legalization, Tetris, Abacus and the legality audit."""

import numpy as np
import pytest

from repro.db import Design, Node, NodeKind, Region, Row
from repro.geometry import Rect
from repro.gp import GlobalPlacer, GPConfig
from repro.legal import (
    Legalizer,
    SubRowMap,
    abacus_refine,
    check_legal,
    legalize_macros,
    tetris_legalize,
)


def grid_design(n_cells=30, n_rows=10, sites=80, seed=0, util_pad=1.0):
    rng = np.random.default_rng(seed)
    d = Design("t")
    for r in range(n_rows):
        d.add_row(Row(y=float(r), height=1.0, site_width=0.25, x_min=0.0, num_sites=sites))
    for i in range(n_cells):
        w = 0.25 * int(rng.integers(2, 8))
        d.add_node(
            Node(
                f"c{i}", w, 1.0,
                x=float(rng.uniform(0, sites * 0.25 - w)),
                y=float(rng.uniform(0, n_rows - 1)),
            )
        )
    return d


class TestMacroLegal:
    def test_overlapping_macros_separated(self):
        d = grid_design(n_cells=0)
        d.add_node(Node("m1", 4.0, 3.0, kind=NodeKind.MACRO, x=5.0, y=4.0))
        d.add_node(Node("m2", 4.0, 3.0, kind=NodeKind.MACRO, x=6.0, y=4.5))
        legalize_macros(d)
        m1, m2 = d.node("m1").rect, d.node("m2").rect
        assert not m1.intersects(m2)

    def test_macro_clamped_into_core(self):
        d = grid_design(n_cells=0)
        d.add_node(Node("m1", 4.0, 3.0, kind=NodeKind.MACRO, x=18.0, y=9.0))
        legalize_macros(d)
        assert d.core.contains_rect(d.node("m1").rect)

    def test_avoids_fixed(self):
        d = grid_design(n_cells=0)
        d.add_node(Node("blk", 6.0, 4.0, kind=NodeKind.FIXED, x=5.0, y=3.0))
        d.add_node(Node("m1", 4.0, 3.0, kind=NodeKind.MACRO, x=6.0, y=3.5))
        legalize_macros(d)
        assert not d.node("m1").rect.intersects(d.node("blk").rect)

    def test_avoids_foreign_fence(self):
        d = grid_design(n_cells=0)
        d.add_region(Region("f", rects=[Rect(4.0, 2.0, 14.0, 8.0)]))
        d.add_node(Node("m1", 4.0, 3.0, kind=NodeKind.MACRO, x=7.0, y=4.0))
        legalize_macros(d)
        assert d.node("m1").rect.overlap_area(Rect(4.0, 2.0, 14.0, 8.0)) == 0.0

    def test_grid_alignment(self):
        d = grid_design(n_cells=0)
        d.add_node(Node("m1", 4.0, 3.0, kind=NodeKind.MACRO, x=5.13, y=4.7))
        legalize_macros(d)
        m = d.node("m1")
        assert abs(m.y - round(m.y)) < 1e-9
        phase = m.x / 0.25
        assert abs(phase - round(phase)) < 1e-9

    def test_channel_clearance(self):
        d = grid_design(n_cells=0)
        d.add_node(Node("m1", 4.0, 3.0, kind=NodeKind.MACRO, x=5.0, y=4.0))
        d.add_node(Node("m2", 4.0, 3.0, kind=NodeKind.MACRO, x=5.5, y=4.0))
        legalize_macros(d, channel=1.0)
        m1, m2 = d.node("m1").rect, d.node("m2").rect
        assert not m1.inflated(0.99).intersects(m2)


class TestTetris:
    def test_all_cells_row_aligned(self):
        d = grid_design()
        tetris_legalize(d)
        for n in d.nodes:
            if n.kind is NodeKind.CELL:
                assert n.y == pytest.approx(round(n.y))

    def test_no_overlaps_after(self):
        d = grid_design(n_cells=60, seed=2)
        tetris_legalize(d)
        assert check_legal(d).ok

    def test_respects_fence_domains(self):
        d = grid_design(n_cells=10, seed=3)
        region = d.add_region(Region("f", rects=[Rect(0.0, 0.0, 20.0, 3.0)]))
        for i in range(5):
            d.nodes[i].region = region.index
        tetris_legalize(d)
        for i in range(5):
            assert region.contains_rect(d.nodes[i].rect)
        for i in range(5, 10):
            assert d.nodes[i].rect.overlap_area(region.rects[0]) == pytest.approx(0.0)

    def test_capacity_exhaustion_raises(self):
        d = grid_design(n_cells=0, n_rows=1, sites=8)  # 2.0 wide row
        for i in range(6):
            d.add_node(Node(f"w{i}", 0.5, 1.0, x=0.0, y=0.0))
        with pytest.raises(RuntimeError):
            tetris_legalize(d)

    def test_no_subrows_for_region_raises(self):
        d = grid_design(n_cells=1)
        d.add_region(Region("far", rects=[Rect(0, 20, 1, 21)]))  # outside rows
        d.nodes[0].region = 0
        with pytest.raises(RuntimeError):
            tetris_legalize(d)


class TestAbacus:
    def test_moves_cells_toward_targets(self):
        d = grid_design(n_cells=12, seed=4)
        desired = {n.index: n.x for n in d.nodes if n.is_movable}
        sm = tetris_legalize(d)
        disp_before = sum(abs(n.x - desired[n.index]) for n in d.nodes if n.is_movable)
        abacus_refine(d, sm, desired)
        disp_after = sum(abs(n.x - desired[n.index]) for n in d.nodes if n.is_movable)
        assert disp_after <= disp_before + 1e-9
        assert check_legal(d).ok

    def test_keeps_subrow_bounds(self):
        d = grid_design(n_cells=40, seed=5)
        sm = tetris_legalize(d)
        abacus_refine(d, sm, {n.index: 0.0 for n in d.nodes})  # all pull left
        for sr in sm.subrows:
            for i in sr.cells:
                node = d.nodes[i]
                assert node.x >= sr.x_min - 1e-9
                assert node.x + node.placed_width <= sr.x_max + 1e-9
        assert check_legal(d).ok


class TestLegalizerEndToEnd:
    def test_after_gp_is_legal(self):
        d = grid_design(n_cells=80, n_rows=12, sites=100, seed=6)
        # random netlist so GP has something to chew
        from repro.db import Net, Pin

        rng = np.random.default_rng(0)
        for j in range(40):
            k = int(rng.integers(2, 5))
            members = rng.choice(80, size=k, replace=False)
            d.add_net(Net(f"n{j}", pins=[Pin(node=int(m)) for m in members]))
        GlobalPlacer(GPConfig(clustering=False, routability=False, max_outer_iterations=12)).place(d)
        res = Legalizer().legalize(d)
        assert res.ok, res.report.summary()
        assert res.total_displacement >= 0

    def test_check_legal_flags_overlap(self):
        d = grid_design(n_cells=0)
        d.add_node(Node("a", 1.0, 1.0, x=0.0, y=0.0))
        d.add_node(Node("b", 1.0, 1.0, x=0.5, y=0.0))
        rep = check_legal(d)
        assert not rep.ok
        assert any("overlap" in v for v in rep.violations)

    def test_check_legal_flags_outside_core(self):
        d = grid_design(n_cells=0)
        d.add_node(Node("a", 1.0, 1.0, x=-5.0, y=0.0))
        rep = check_legal(d)
        assert any("outside core" in v for v in rep.violations)

    def test_check_legal_flags_misalignment(self):
        d = grid_design(n_cells=0)
        d.add_node(Node("a", 1.0, 1.0, x=0.1, y=0.0))
        rep = check_legal(d)
        assert any("site-aligned" in v for v in rep.violations)

    def test_check_legal_flags_fence_violation(self):
        d = grid_design(n_cells=0)
        region = d.add_region(Region("f", rects=[Rect(0.0, 0.0, 5.0, 2.0)]))
        d.add_node(Node("a", 1.0, 1.0, x=10.0, y=0.0, region=region.index))
        rep = check_legal(d)
        assert any("outside fence" in v for v in rep.violations)

    def test_check_legal_flags_fence_intrusion(self):
        d = grid_design(n_cells=0)
        d.add_region(Region("f", rects=[Rect(0.0, 0.0, 5.0, 2.0)]))
        d.add_node(Node("a", 1.0, 1.0, x=1.0, y=1.0))  # unfenced inside fence
        rep = check_legal(d)
        assert any("intrudes" in v for v in rep.violations)
