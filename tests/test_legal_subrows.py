"""Tests for sub-row construction (obstacles + fence domains)."""

import pytest

from repro.db import Design, Node, NodeKind, Region, Row
from repro.geometry import Rect
from repro.legal import SubRowMap


def design_with_rows(n_rows=4, sites=40, site_w=0.25):
    d = Design("t")
    for r in range(n_rows):
        d.add_row(Row(y=float(r), height=1.0, site_width=site_w, x_min=0.0, num_sites=sites))
    return d


class TestPlainRows:
    def test_one_subrow_per_row(self):
        d = design_with_rows()
        sm = SubRowMap(d)
        assert len(sm.subrows) == 4
        assert all(sr.region is None for sr in sm.subrows)

    def test_widths(self):
        d = design_with_rows()
        sm = SubRowMap(d)
        assert all(sr.width == pytest.approx(10.0) for sr in sm.subrows)


class TestObstacles:
    def test_fixed_node_splits_row(self):
        d = design_with_rows()
        d.add_node(Node("blk", 2.0, 1.0, kind=NodeKind.FIXED, x=4.0, y=1.0))
        sm = SubRowMap(d)
        row1 = [sr for sr in sm.subrows if sr.y == 1.0]
        assert len(row1) == 2
        assert row1[0].x_max == pytest.approx(4.0)
        assert row1[1].x_min == pytest.approx(6.0)

    def test_movable_macro_blocks(self):
        d = design_with_rows()
        d.add_node(Node("mac", 2.0, 2.0, kind=NodeKind.MACRO, x=0.0, y=0.0))
        sm = SubRowMap(d)
        rows01 = [sr for sr in sm.subrows if sr.y in (0.0, 1.0)]
        assert all(sr.x_min >= 2.0 for sr in rows01)

    def test_terminal_ni_does_not_block(self):
        d = design_with_rows()
        d.add_node(Node("pad", 2.0, 1.0, kind=NodeKind.TERMINAL_NI, x=4.0, y=1.0))
        sm = SubRowMap(d)
        assert len(sm.subrows) == 4

    def test_sliver_dropped(self):
        d = design_with_rows()
        # obstacle leaving a sliver thinner than a site
        d.add_node(Node("blk", 9.9, 1.0, kind=NodeKind.FIXED, x=0.0, y=2.0))
        sm = SubRowMap(d)
        assert not [sr for sr in sm.subrows if sr.y == 2.0 and sr.width < 0.25]

    def test_alignment_preserved_after_cut(self):
        d = design_with_rows()
        d.add_node(Node("blk", 1.9, 1.0, kind=NodeKind.FIXED, x=4.05, y=1.0))
        sm = SubRowMap(d)
        right = [sr for sr in sm.subrows if sr.y == 1.0][-1]
        # x_min snapped up to the global 0.25 site grid
        phase = right.x_min / 0.25
        assert abs(phase - round(phase)) < 1e-9
        assert right.x_min >= 4.05 + 1.9 - 1e-9


class TestFenceDomains:
    def test_full_rows_become_fence_domain(self):
        d = design_with_rows()
        region = d.add_region(Region("f", rects=[Rect(2.0, 1.0, 6.0, 3.0)]))
        sm = SubRowMap(d)
        fenced = [sr for sr in sm.subrows if sr.region == region.index]
        assert {sr.y for sr in fenced} == {1.0, 2.0}
        assert all(sr.x_min == pytest.approx(2.0) for sr in fenced)
        open_rows = sm.for_region(None)
        assert all(
            not (sr.y in (1.0, 2.0) and 2.0 < (sr.x_min + sr.x_max) / 2 < 6.0)
            for sr in open_rows
        )

    def test_partial_row_coverage_excluded_entirely(self):
        d = design_with_rows()
        # fence covers only half of row 1's height
        d.add_region(Region("f", rects=[Rect(2.0, 1.0, 6.0, 1.5)]))
        sm = SubRowMap(d)
        assert sm.for_region(0) == []
        # the covered x span is unusable for open cells too
        row1_open = [sr for sr in sm.for_region(None) if sr.y == 1.0]
        assert all(sr.x_max <= 2.0 + 1e-9 or sr.x_min >= 6.0 - 1e-9 for sr in row1_open)

    def test_for_region_filtering(self):
        d = design_with_rows()
        d.add_region(Region("f", rects=[Rect(0.0, 0.0, 10.0, 2.0)]))
        sm = SubRowMap(d)
        assert len(sm.for_region(0)) == 2
        assert len(sm.for_region(None)) == 2

    def test_total_capacity(self):
        d = design_with_rows()
        sm = SubRowMap(d)
        assert sm.total_capacity(None) == pytest.approx(40.0)


class TestSnapX:
    def test_snap_inside(self):
        d = design_with_rows()
        sm = SubRowMap(d)
        sr = sm.subrows[0]
        assert sr.snap_x(3.14, 1.0) == pytest.approx(3.25)

    def test_snap_clamps_right(self):
        d = design_with_rows()
        sm = SubRowMap(d)
        sr = sm.subrows[0]
        assert sr.snap_x(99.0, 1.0) <= sr.x_max - 1.0 + 1e-9
