"""Extra tests for the report/table machinery."""

import math

import pytest

from repro.metrics import comparison_table, format_table, geometric_mean, normalize_rows


class TestFormatTable:
    def test_explicit_columns_subset(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        out = format_table(rows, columns=["c", "a"])
        header = out.splitlines()[0]
        assert "c" in header and "a" in header and "b" not in header

    def test_missing_values_blank(self):
        rows = [{"a": 1}, {"a": 2, "b": 9}]
        out = format_table(rows)
        assert out.count("9") == 1

    def test_large_numbers_formatted(self):
        out = format_table([{"x": 1234567.0}])
        assert "1,234,567" in out

    def test_title_prepended(self):
        out = format_table([{"a": 1}], title="T")
        assert out.splitlines()[0] == "T"

    def test_zero_float(self):
        assert "0" in format_table([{"a": 0.0}])


class TestGeometricMean:
    def test_single(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_skips_nonpositive(self):
        assert geometric_mean([2.0, 0.0, -1.0, 8.0]) == pytest.approx(4.0)

    def test_all_invalid_nan(self):
        assert math.isnan(geometric_mean([0.0, -2.0]))


class TestNormalizeRows:
    def test_missing_reference_nan(self):
        rows = [{"design": "a", "flow": "new", "m": 5.0}]
        out = normalize_rows(rows, "m", "base")
        assert math.isnan(out[0]["m_ratio"])

    def test_does_not_mutate_input(self):
        rows = [{"design": "a", "flow": "base", "m": 5.0}]
        normalize_rows(rows, "m", "base")
        assert "m_ratio" not in rows[0]


class TestComparisonTable:
    class FakeResult:
        def __init__(self, hpwl, rc):
            self.hpwl_final = hpwl
            self.rc = rc
            self.scaled_hpwl = hpwl * (1 + max(0.0, rc - 1))

    def test_ratio_row_math(self):
        a = {"d1": self.FakeResult(100.0, 0.9)}
        b = {"d1": self.FakeResult(110.0, 0.9)}
        out = comparison_table({"A": a, "B": b})
        assert "1.1" in out  # B/A HPWL ratio

    def test_handles_missing_design(self):
        a = {"d1": self.FakeResult(100.0, 0.9), "d2": self.FakeResult(50.0, 1.0)}
        b = {"d1": self.FakeResult(100.0, 0.9)}
        out = comparison_table({"A": a, "B": b})
        assert "d2" in out
