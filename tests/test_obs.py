"""Tests for the observability subsystem (repro.obs)."""

import json
import logging
import os
import threading
import time

import pytest

from repro.benchgen import BenchmarkSpec, make_benchmark
from repro.dp import DPConfig
from repro.flow import FlowConfig, NTUplace4H
from repro.obs import (
    NULL_REGISTRY,
    NULL_TRACER,
    SCHEMA_VERSION,
    Histogram,
    MetricsRegistry,
    Tracer,
    configure_logging,
    format_trace_summary,
    get_logger,
    get_tracer,
    read_jsonl,
    set_tracer,
    span_rows,
    use_tracer,
    write_jsonl,
)


class TestSpanNesting:
    def test_paths_and_depths(self):
        t = Tracer()
        with t.span("flow"):
            with t.span("gp"):
                with t.span("iter[0]"):
                    pass
                with t.span("iter[1]"):
                    pass
            with t.span("legal"):
                pass
        paths = [s.path for s in t.finished_spans()]
        assert paths == [
            "flow/gp/iter[0]",
            "flow/gp/iter[1]",
            "flow/gp",
            "flow/legal",
            "flow",
        ]
        depths = {s.path: s.depth for s in t.finished_spans()}
        assert depths["flow"] == 0
        assert depths["flow/gp"] == 1
        assert depths["flow/gp/iter[1]"] == 2

    def test_durations_and_attrs(self):
        t = Tracer()
        with t.span("work", design="rh01") as span:
            time.sleep(0.01)
        assert span.duration >= 0.009
        assert span.attrs == {"design": "rh01"}
        parent = t.finished_spans()[0]
        assert parent.duration >= parent.start - parent.start  # non-negative

    def test_exception_marks_span(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with t.span("boom"):
                raise ValueError("x")
        (span,) = t.finished_spans()
        assert span.error == "ValueError"

    def test_events_carry_current_path(self):
        t = Tracer()
        with t.span("flow"):
            t.event("milestone", k=1)
        (evt,) = t.events()
        assert evt.path == "flow"
        assert evt.attrs == {"k": 1}

    def test_threads_nest_independently(self):
        t = Tracer()

        def worker(name):
            with t.span(name):
                with t.span("inner"):
                    time.sleep(0.005)

        threads = [threading.Thread(target=worker, args=(f"w{i}",)) for i in range(4)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        paths = sorted(s.path for s in t.finished_spans())
        assert sorted(f"w{i}" for i in range(4)) == [p for p in paths if "/" not in p]
        assert all(f"w{i}/inner" in paths for i in range(4))


class TestDisabledTracer:
    def test_default_tracer_is_noop(self):
        assert get_tracer() is NULL_TRACER
        assert not get_tracer().enabled

    def test_null_span_is_shared_singleton(self):
        # The disabled path must not allocate: every span() call hands
        # back the same reusable context manager.
        a = NULL_TRACER.span("gp", design="x")
        b = NULL_TRACER.span("legal")
        assert a is b
        with a:
            pass
        assert NULL_TRACER.finished_spans() == []
        assert NULL_TRACER.current_path() == ""

    def test_null_metrics_accept_everything(self):
        NULL_REGISTRY.counter("c").inc()
        NULL_REGISTRY.gauge("g").set(3.0)
        NULL_REGISTRY.histogram("h").observe(1.0)
        NULL_REGISTRY.record("m", 0, 1.0)
        assert NULL_REGISTRY.samples() == []
        assert NULL_REGISTRY.snapshot()["counters"] == {}

    def test_disabled_overhead_is_tiny(self):
        # 100k disabled span entries/exits + metric records should be
        # well under a second on any machine (each is ~a method call).
        tracer = NULL_TRACER
        t0 = time.perf_counter()
        for i in range(100_000):
            with tracer.span("hot"):
                tracer.metrics.record("m", i, 1.0)
        assert time.perf_counter() - t0 < 1.0

    def test_use_tracer_restores_previous(self):
        t = Tracer()
        with use_tracer(t):
            assert get_tracer() is t
            with use_tracer(None):
                assert get_tracer() is NULL_TRACER
            assert get_tracer() is t
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_none_resets(self):
        t = Tracer()
        set_tracer(t)
        try:
            assert get_tracer() is t
        finally:
            set_tracer(None)
        assert get_tracer() is NULL_TRACER


class TestMetrics:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.counter("moves").inc()
        reg.counter("moves").inc(4)
        reg.gauge("lam").set(2.5)
        snap = reg.snapshot()
        assert snap["counters"]["moves"] == 5
        assert snap["gauges"]["lam"] == 2.5

    def test_histogram_bucketing(self):
        h = Histogram("t", buckets=(1.0, 2.0, 5.0))
        for v in (0.5, 1.0, 1.5, 4.0, 100.0):
            h.observe(v)
        # <=1: 0.5, 1.0 | <=2: 1.5 | <=5: 4.0 | overflow: 100.0
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.mean == pytest.approx(107.0 / 5)

    def test_histogram_buckets_sorted(self):
        h = Histogram("t", buckets=(5.0, 1.0))
        h.observe(2.0)
        assert h.buckets == (1.0, 5.0)
        assert h.counts == [0, 1, 0]

    def test_series_recording(self):
        reg = MetricsRegistry()
        for step, value in enumerate([10.0, 9.0, 8.5]):
            reg.record("gp.hpwl", step, value)
        reg.record("gp.overflow", 0, 0.9)
        assert reg.series("gp.hpwl") == [(0, 10.0), (1, 9.0), (2, 8.5)]
        assert len(reg.samples()) == 4
        assert [s.metric for s in reg.samples("gp.overflow")] == ["gp.overflow"]


class TestJsonlRoundTrip:
    def test_round_trip(self, tmp_path):
        t = Tracer()
        with t.span("flow", design="d"):
            with t.span("gp"):
                t.metrics.record("gp.hpwl", 0, 123.0)
                t.metrics.counter("gp.iters").inc(3)
            t.event("log", level="INFO", message="hello")
        path = tmp_path / "trace.jsonl"
        count = write_jsonl(t, path, meta={"design": "d"})
        records = read_jsonl(path)
        assert len(records) == count
        assert records[0]["type"] == "meta"
        assert records[0]["schema"] == SCHEMA_VERSION
        assert records[0]["design"] == "d"
        by_type = {}
        for rec in records:
            by_type.setdefault(rec["type"], []).append(rec)
        span_paths = {r["path"] for r in by_type["span"]}
        assert span_paths == {"flow", "flow/gp"}
        (sample,) = by_type["sample"]
        assert sample == {"type": "sample", "metric": "gp.hpwl", "step": 0, "value": 123.0}
        (evt,) = by_type["event"]
        assert evt["attrs"]["message"] == "hello"
        (metrics,) = by_type["metrics"]
        assert metrics["counters"]["gp.iters"] == 3

    def test_every_line_is_json(self, tmp_path):
        t = Tracer()
        with t.span("a"):
            pass
        path = tmp_path / "t.jsonl"
        write_jsonl(t, path)
        with open(path) as fh:
            for line in fh:
                json.loads(line)


class TestSummary:
    def _tracer(self):
        t = Tracer()
        with t.span("flow"):
            with t.span("gp"):
                with t.span("iter[0]"):
                    pass
            with t.span("route"):
                pass
        t.metrics.record("gp.hpwl", 0, 10.0)
        return t

    def test_rows_aggregate_and_indent(self):
        rows = span_rows(self._tracer())
        names = [r["span"].strip() for r in rows]
        assert names == ["flow", "gp", "iter[0]", "route"]
        assert rows[0]["share"] == "100.0%"

    def test_max_depth_filters(self):
        rows = span_rows(self._tracer(), max_depth=1)
        assert [r["span"].strip() for r in rows] == ["flow", "gp", "route"]

    def test_format_trace_summary(self):
        out = format_trace_summary(self._tracer())
        assert "trace summary" in out
        assert "gp" in out and "route" in out
        assert "metric series" in out
        assert "gp.hpwl" in out


class TestSummaryEdgeCases:
    def test_empty_trace_is_well_formed(self):
        t = Tracer()
        assert span_rows(t) == []
        out = format_trace_summary(t)
        assert "no spans recorded" in out

    def test_out_of_order_close_via_exception(self):
        # An exception unwinding through nested spans closes children
        # and parents in one sweep; the summary must still nest cleanly.
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("flow"):
                with t.span("gp"):
                    with t.span("iter[0]"):
                        raise RuntimeError("boom")
        rows = span_rows(t)
        assert [r["span"].strip() for r in rows] == ["flow", "gp", "iter[0]"]
        assert rows[0]["share"] == "100.0%"

    def test_orphan_span_without_finished_parent(self):
        # A child finished while its parent is still open (export taken
        # mid-run, or a crash) must appear, not vanish.
        t = Tracer()
        handle = t.span("flow")
        handle.__enter__()
        with t.span("gp"):
            pass
        rows = span_rows(t)
        assert [r["span"].strip() for r in rows] == ["gp"]
        assert rows[0]["share"] == "-"  # no finished roots -> no total
        handle.__exit__(None, None, None)

    def test_duplicate_paths_at_different_depths_collapse(self):
        # Simulate a corrupted stack: the same path recorded at two
        # depths aggregates onto one row at the shallowest depth.
        t = Tracer()
        with t.span("flow"):
            with t.span("gp"):
                pass
        for span in t.finished_spans():
            if span.path == "flow/gp":
                dup = type(span)(
                    name="gp", path="flow/gp", start=span.start,
                    duration=0.1, depth=2,
                )
                t._spans.append(dup)
        rows = span_rows(t)
        names = [r["span"].strip() for r in rows]
        assert names == ["flow", "gp"]
        assert rows[1]["calls"] == 2

    def test_duplicate_names_same_depth_distinct_parents(self):
        t = Tracer()
        with t.span("flow"):
            with t.span("gp"):
                with t.span("cg"):
                    pass
            with t.span("refine"):
                with t.span("cg"):
                    pass
        rows = span_rows(t, max_depth=None)
        names = [r["span"].strip() for r in rows]
        # Each "cg" stays under its own parent.
        assert names == ["flow", "gp", "cg", "refine", "cg"]


class TestMetricsIsolation:
    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1.0)
        reg.record("m", 0, 1.0)
        reg.reset()
        assert reg.samples() == []
        snap = reg.snapshot()
        assert snap["counters"] == {} and snap["gauges"] == {}

    def test_fresh_metrics_swaps_registry(self):
        t = Tracer()
        t.metrics.record("m", 0, 1.0)
        old = t.metrics
        new = t.fresh_metrics()
        assert new is t.metrics and new is not old
        assert new.samples() == []
        assert old.samples()  # the old registry is untouched

    def test_back_to_back_flow_runs_do_not_accumulate(self):
        # Two runs under ONE tracer: the second run's series must not
        # contain the first run's samples (fresh registry per run()).
        tracer = Tracer()
        cfg = _fast_cfg()
        cfg.gp.max_outer_iterations = 4
        cfg.run_dp = False
        with use_tracer(tracer):
            NTUplace4H(cfg).run(_bench(), route=False)
            first = [s.step for s in tracer.metrics.samples("gp.hpwl")]
            NTUplace4H(cfg).run(_bench(), route=False)
        second = [s.step for s in tracer.metrics.samples("gp.hpwl")]
        assert first, "first run must record gp.hpwl"
        assert second == first  # identical seeded run, NOT doubled
        assert len(set(second)) == len(second)


class TestLoggingBridge:
    def test_logger_namespace(self):
        assert get_logger("gp").name == "repro.gp"
        assert get_logger("repro.gp").name == "repro.gp"
        assert get_logger("repro").name == "repro"

    def test_log_records_become_trace_events(self):
        configure_logging(logging.INFO, force=True)
        t = Tracer()
        with use_tracer(t):
            get_logger("gp").info("hpwl=%d", 42)
        events = [e for e in t.events() if e.name == "log"]
        assert events, "log record should be bridged into the tracer"
        assert events[-1].attrs["message"] == "hpwl=42"
        assert events[-1].attrs["logger"] == "repro.gp"
        assert events[-1].attrs["level"] == "INFO"

    def test_no_events_without_tracer(self):
        configure_logging(logging.INFO, force=True)
        get_logger("gp").info("dropped")  # must not raise with NULL_TRACER


def _fast_cfg() -> FlowConfig:
    cfg = FlowConfig()
    cfg.gp.clustering = False
    cfg.gp.max_outer_iterations = 12
    cfg.gp.inner_iterations = 16
    cfg.refine_outer_iterations = 4
    cfg.dp = DPConfig(rounds=1)
    return cfg


def _bench(seed=61):
    return make_benchmark(
        BenchmarkSpec(
            name="obsflow", num_cells=250, num_macros=2, num_fixed_macros=1,
            num_terminals=12, utilization=0.55, cap_factor=4.0, seed=seed,
        )
    )


class TestEndToEndFlow:
    @pytest.fixture(scope="class")
    def traced_run(self):
        tracer = Tracer()
        with use_tracer(tracer):
            result = NTUplace4H(_fast_cfg()).run(_bench())
        return tracer, result

    def test_all_five_stages_have_spans(self, traced_run):
        tracer, _ = traced_run
        paths = {s.path for s in tracer.finished_spans()}
        for stage in ("gp", "macro_legal_refine", "legal", "dp", "route"):
            assert f"flow/{stage}" in paths, f"missing span for stage {stage}"

    def test_gp_iteration_spans_nest_under_flow(self, traced_run):
        tracer, _ = traced_run
        paths = {s.path for s in tracer.finished_spans()}
        assert "flow/gp/iter[0]" in paths
        assert "flow/gp/iter[0]/cg" in paths
        assert "flow/gp/iter[0]/gradient" in paths

    def test_gp_telemetry_monotone_in_iteration(self, traced_run):
        tracer, result = traced_run
        for metric in ("gp.hpwl", "gp.overflow", "gp.lam", "gp.gamma",
                       "gp.step", "gp.cg_iters"):
            steps = [s.step for s in tracer.metrics.samples(metric)]
            assert steps, f"no samples for {metric}"
            assert steps == sorted(steps)
            assert len(set(steps)) == len(steps), f"{metric} steps must be unique"
        # The registry series and the report's telemetry agree.
        tele = result.gp_report.telemetry
        assert [v for _, v in tracer.metrics.series("gp.hpwl")] == tele["hpwl"]
        assert tele["outer"] == sorted(tele["outer"])

    def test_route_overflow_per_round_recorded(self, traced_run):
        tracer, result = traced_run
        rounds = result.route_result.overflow_per_round
        assert rounds, "router must record at least the initial round"
        assert tracer.metrics.series("route.overflow") == list(enumerate(rounds))

    def test_dp_telemetry(self, traced_run):
        _, result = traced_run
        tele = result.dp_report.telemetry
        assert tele["pass"]
        assert len(tele["pass"]) == len(tele["accepted"]) == len(tele["hpwl_delta"])

    def test_flow_result_telemetry_aggregate(self, traced_run):
        _, result = traced_run
        tele = result.telemetry
        assert set(tele) == {"stage_seconds", "gp", "dp", "route", "resilience"}
        assert all(v >= 0 for v in tele["stage_seconds"].values())

    def test_stage_seconds_nonnegative_perf_counter(self, traced_run):
        _, result = traced_run
        for stage, seconds in result.stage_seconds.items():
            assert seconds >= 0, stage
        assert result.runtime_seconds > 0


class TestCliTracing:
    def test_place_trace_flags(self, tmp_path, capsys):
        from repro.cli import main

        bench = str(tmp_path / "bench")
        assert main(
            ["generate", "--name", "obscli", "--cells", "150", "--macros", "1",
             "--seed", "3", "--out", bench]
        ) == 0
        trace = str(tmp_path / "trace.jsonl")
        capsys.readouterr()
        rc = main(
            ["place", "--aux", os.path.join(bench, "obscli.aux"),
             "--trace", trace, "--trace-summary"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace summary" in out
        assert "flow result" in out
        records = read_jsonl(trace)
        span_paths = {r["path"] for r in records if r["type"] == "span"}
        for stage in ("gp", "legal", "dp", "route"):
            assert f"flow/{stage}" in span_paths
        assert any(p.startswith("flow/gp/iter[") for p in span_paths)
        gp_samples = [
            r for r in records
            if r["type"] == "sample" and r["metric"].startswith("gp.")
        ]
        assert gp_samples, "trace must contain per-iteration GP samples"

    def test_place_without_trace_uses_null_tracer(self, tmp_path, capsys):
        from repro.cli import main

        bench = str(tmp_path / "bench")
        main(["generate", "--name", "plain", "--cells", "120", "--seed", "5",
              "--out", bench])
        rc = main(
            ["place", "--aux", os.path.join(bench, "plain.aux"),
             "--no-dp", "--no-route", "--wirelength-only"]
        )
        assert rc == 0
        assert get_tracer() is NULL_TRACER
