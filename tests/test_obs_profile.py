"""Tests for resource profiling (repro.obs.profile)."""

import threading
import time
import tracemalloc

import pytest

from repro.obs import SamplingProfiler, Tracer, format_trace_summary, span_rows
from repro.obs.profile import (
    _function_key,
    _stage_key,
    capture_resources,
    finish_resources,
    rss_kb,
)


class TestSpanResources:
    def test_rss_kb_positive(self):
        assert rss_kb() > 0

    def test_capture_finish_roundtrip(self):
        entry = capture_resources()
        deadline = time.process_time() + 0.02
        while time.process_time() < deadline:
            pass  # burn a little CPU
        out = finish_resources(entry)
        assert out["cpu_s"] >= 0.015
        assert "rss_delta_kb" in out
        assert "tracemalloc_peak_kb" not in out  # not tracing

    def test_tracemalloc_peak_when_tracing(self):
        tracemalloc.start()
        try:
            entry = capture_resources()
            blob = [bytearray(512 * 1024)]  # ~512 KiB Python heap
            out = finish_resources(entry)
            del blob
        finally:
            tracemalloc.stop()
        assert out["tracemalloc_peak_kb"] >= 400.0

    def test_tracer_records_span_resources(self):
        t = Tracer(profile_resources=True)
        with t.span("flow"):
            with t.span("gp"):
                deadline = time.process_time() + 0.01
                while time.process_time() < deadline:
                    pass
        for span in t.finished_spans():
            assert span.resources is not None
            assert span.resources["cpu_s"] >= 0.0
            rec = span.as_record()
            assert rec["resources"] == span.resources

    def test_resources_off_by_default(self):
        t = Tracer()
        with t.span("flow"):
            pass
        (span,) = t.finished_spans()
        assert span.resources is None
        assert "resources" not in span.as_record()

    def test_cpu_column_in_summary(self):
        t = Tracer(profile_resources=True)
        with t.span("flow"):
            pass
        rows = span_rows(t)
        assert "cpu_s" in rows[0]
        assert "cpu_s" in format_trace_summary(t)


class TestKeyHelpers:
    def test_stage_key_truncates(self):
        assert _stage_key("flow/gp/iter[3]/cg") == "flow/gp"
        assert _stage_key("flow") == "flow"
        assert _stage_key("") == "(no span)"

    def test_function_key_shortens_src_paths(self):
        frame = sys_frame()
        key = _function_key(frame)
        assert key.endswith(":sys_frame")
        assert "/root/" not in key


def sys_frame():
    import sys

    return sys._getframe()


class TestSamplingProfiler:
    def test_attributes_busy_thread_to_stage(self):
        tracer = Tracer()
        prof = SamplingProfiler(tracer, interval=0.001)
        stop = threading.Event()

        def busy():
            with tracer.span("flow"):
                with tracer.span("gp"):
                    while not stop.wait(0):
                        sum(range(500))

        worker = threading.Thread(target=busy)
        with prof:
            worker.start()
            time.sleep(0.15)
            stop.set()
            worker.join()
        assert prof.samples > 10
        rows = prof.report()
        assert rows, "expected sampled rows"
        stages = {r["stage"] for r in rows}
        assert "flow/gp" in stages
        total_share = sum(
            float(r["share"].rstrip("%")) for r in rows if r["share"] != "-"
        )
        assert total_share <= 100.5

    def test_as_record_shape(self):
        prof = SamplingProfiler(interval=0.001)
        with prof:
            time.sleep(0.02)
        rec = prof.as_record(top=3)
        assert rec["interval_s"] == 0.001
        assert rec["samples"] == prof.samples
        assert rec["wall_s"] > 0
        assert len(rec["top"]) <= 3

    def test_summary_appends_profile_table(self):
        tracer = Tracer()
        prof = SamplingProfiler(tracer, interval=0.001)
        with prof:
            with tracer.span("flow"):
                time.sleep(0.05)
        out = format_trace_summary(tracer, profile=prof)
        assert "sampling profile" in out

    def test_restart_guard_and_validation(self):
        prof = SamplingProfiler(interval=0.001)
        prof.start()
        with pytest.raises(RuntimeError):
            prof.start()
        prof.stop()
        prof.stop()  # idempotent
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0.0)

    def test_zero_overhead_when_not_started(self):
        prof = SamplingProfiler(interval=0.001)
        assert prof.samples == 0
        assert prof.report() == []
        assert threading.active_count() == threading.active_count()


class TestOverheadBench:
    @pytest.fixture(scope="class")
    def bench(self):
        import os
        import sys

        sys.path.insert(
            0,
            os.path.join(os.path.dirname(__file__), os.pardir, "benchmarks"),
        )
        try:
            import bench_obs_overhead
        finally:
            sys.path.pop(0)
        return bench_obs_overhead

    def test_stub_transform_strips_instrumentation(self, bench):
        module, stripper = bench.build_stubbed_placer()
        assert stripper.stripped_spans >= 5
        assert stripper.stripped_calls >= 5
        src = open(module.__file__, encoding="utf-8").read()
        assert "tracer.span" in src  # the real module keeps its obs
        assert hasattr(module, "GlobalPlacer")
        assert module.GlobalPlacer is not None

    def test_stub_matches_instrumented_and_gate_passes(self, bench):
        record = bench.run_bench("rh01", repeats=1)
        assert record["identical_placements"]
        assert record["call_volume"]["spans"] > 0
        assert record["call_volume"]["samples"] > 0
        # The attributed disabled-tracing overhead is what CI gates at
        # 1%; in practice it is orders of magnitude below that.
        assert record["overhead_pct"] < 1.0
