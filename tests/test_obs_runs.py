"""Tests for the run-history registry (repro.obs.runs) and its CLI."""

import json
import os

import pytest

from repro.benchgen import BenchmarkSpec, make_benchmark
from repro.cli import main
from repro.dp import DPConfig
from repro.flow import FlowConfig, NTUplace4H
from repro.obs import (
    RUN_SCHEMA_VERSION,
    RunRecord,
    RunRegistry,
    RunRegistryError,
    SchemaError,
    diff_runs,
    record_flow_run,
    validate_run_record,
)
from repro.obs.runs import (
    config_hash,
    exceeds_tolerance,
    git_revision,
    new_run_id,
    run_summary_row,
)
from repro.obs.schema import (
    RUN_SCHEMA_VERSION as SCHEMA_RUN_VERSION,
    SCHEMA_VERSION,
    build_run_schema,
    build_trace_schema,
)


def _record(run_id="rh01-20260807-120000-abc123", design="rh01", *,
            created=1000.0, metrics=None, stages=None, degraded=False):
    return {
        "schema": RUN_SCHEMA_VERSION,
        "run_id": run_id,
        "created": created,
        "design": design,
        "flow": "ntuplace4h",
        "config_hash": "deadbeef0123",
        "git_rev": "a" * 40,
        "legal": True,
        "degraded": degraded,
        "degradation": [],
        "stage_seconds": stages or {"gp": 1.5, "legal": 0.2, "dp": 0.8},
        "metrics": metrics or {
            "hpwl_final": 1000.0, "rc": 1.05, "scaled_hpwl": 1050.0,
        },
        "trace_path": None,
    }


class TestRunRegistry:
    def test_append_list_get_count(self, tmp_path):
        reg = RunRegistry(tmp_path / "runs")
        a = _record("rh01-a-111111", created=1.0)
        b = _record("rh01-b-222222", created=2.0)
        assert reg.append(a) == "rh01-a-111111"
        assert reg.append(b) == "rh01-b-222222"
        assert reg.count() == 2
        listed = reg.list()
        assert [r["run_id"] for r in listed] == [
            "rh01-b-222222", "rh01-a-111111"  # newest first
        ]
        assert reg.get("rh01-a-111111")["created"] == 1.0

    def test_jsonl_mirror_appends(self, tmp_path):
        reg = RunRegistry(tmp_path / "runs")
        reg.append(_record("x-1-aaaaaa"))
        reg.append(_record("x-2-bbbbbb"))
        lines = open(reg.jsonl_path).read().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["run_id"] == "x-1-aaaaaa"

    def test_prefix_lookup(self, tmp_path):
        reg = RunRegistry(tmp_path / "runs")
        reg.append(_record("rh01-20260807-aaa111"))
        reg.append(_record("rh02-20260807-bbb222", design="rh02"))
        assert reg.get("rh01")["run_id"] == "rh01-20260807-aaa111"

    def test_ambiguous_prefix_raises(self, tmp_path):
        reg = RunRegistry(tmp_path / "runs")
        reg.append(_record("rh01-a-111111", created=1.0))
        reg.append(_record("rh01-b-222222", created=2.0))
        with pytest.raises(RunRegistryError, match="ambiguous"):
            reg.get("rh01")

    def test_missing_id_raises(self, tmp_path):
        reg = RunRegistry(tmp_path / "runs")
        with pytest.raises(RunRegistryError, match="no run matching"):
            reg.get("nope")

    def test_list_filters_by_design_and_limit(self, tmp_path):
        reg = RunRegistry(tmp_path / "runs")
        for i in range(5):
            reg.append(_record(f"rh01-{i}-{i:06d}", created=float(i)))
        reg.append(_record("rh02-0-999999", design="rh02", created=99.0))
        assert len(reg.list(design="rh01")) == 5
        assert len(reg.list(design="rh01", limit=2)) == 2
        assert reg.list(limit=1)[0]["design"] == "rh02"

    def test_set_trace_path(self, tmp_path):
        reg = RunRegistry(tmp_path / "runs")
        reg.append(_record("rh01-a-111111"))
        reg.set_trace_path("rh01-a", "/tmp/trace.jsonl")
        assert reg.get("rh01-a-111111")["trace_path"] == "/tmp/trace.jsonl"

    def test_invalid_record_rejected(self, tmp_path):
        reg = RunRegistry(tmp_path / "runs")
        bad = _record()
        del bad["design"]
        with pytest.raises(SchemaError, match="design"):
            reg.append(bad)
        assert reg.count() == 0
        assert not os.path.exists(reg.jsonl_path)

    def test_duplicate_run_id_rejected(self, tmp_path):
        reg = RunRegistry(tmp_path / "runs")
        reg.append(_record("dup-1-aaaaaa"))
        with pytest.raises(Exception):
            reg.append(_record("dup-1-aaaaaa"))

    def test_registry_survives_reopen(self, tmp_path):
        root = tmp_path / "runs"
        RunRegistry(root).append(_record("rh01-a-111111"))
        assert RunRegistry(root).count() == 1


class TestProvenance:
    def test_config_hash_stable_and_sensitive(self):
        a, b = FlowConfig(), FlowConfig()
        assert config_hash(a) == config_hash(b)
        b.gp.max_outer_iterations += 1
        assert config_hash(a) != config_hash(b)
        assert len(config_hash(a)) == 12

    def test_git_revision_resolves_this_repo(self):
        rev = git_revision(os.path.dirname(__file__))
        assert rev is not None
        assert len(rev) == 40
        int(rev, 16)  # hex

    def test_git_revision_none_outside_repo(self, tmp_path):
        assert git_revision(str(tmp_path)) is None

    def test_new_run_id_shape(self):
        rid = new_run_id("rh01")
        assert rid.startswith("rh01-")
        assert len(rid.rsplit("-", 1)[1]) == 6
        assert new_run_id("rh01") != new_run_id("rh01")


class TestFlowIntegration:
    @pytest.fixture(scope="class")
    def flow_run(self, tmp_path_factory):
        runs_dir = str(tmp_path_factory.mktemp("runs"))
        cfg = FlowConfig()
        cfg.gp.clustering = False
        cfg.gp.max_outer_iterations = 6
        cfg.gp.inner_iterations = 16
        cfg.refine_outer_iterations = 2
        cfg.dp = DPConfig(rounds=1)
        cfg.runs_dir = runs_dir
        design = make_benchmark(
            BenchmarkSpec(
                name="runflow", num_cells=200, num_macros=1,
                num_fixed_macros=1, num_terminals=8, utilization=0.5,
                cap_factor=4.0, seed=5,
            )
        )
        result = NTUplace4H(cfg).run(design, route=False)
        return runs_dir, cfg, result

    def test_run_recorded_with_id(self, flow_run):
        runs_dir, cfg, result = flow_run
        assert result.run_id is not None
        record = RunRegistry(runs_dir).get(result.run_id)
        validate_run_record(record)
        assert record["design"] == "runflow"
        assert record["config_hash"] == config_hash(cfg)
        assert record["metrics"]["hpwl_final"] == pytest.approx(
            result.hpwl_final
        )
        assert record["metrics"]["legal_ok"] == 1.0
        assert set(record["stage_seconds"]) >= {"global_place", "legalize"}

    def test_from_flow_and_record_flow_run(self, flow_run, tmp_path):
        _, cfg, result = flow_run
        rec = RunRecord.from_flow(result, cfg, trace_path="t.jsonl")
        validate_run_record(rec.as_record())
        assert rec.trace_path == "t.jsonl"
        rid = record_flow_run(tmp_path / "r2", result, cfg)
        assert RunRegistry(tmp_path / "r2").get(rid)["design"] == "runflow"


class TestDiffRuns:
    def test_within_tolerance_no_regression(self):
        a = _record("a-1-aaaaaa")
        b = _record("b-1-bbbbbb",
                    metrics={"hpwl_final": 1010.0, "rc": 1.055,
                             "scaled_hpwl": 1060.0})
        diff = diff_runs(a, b)
        assert diff["comparable"]
        assert diff["regressions"] == []
        assert all(row["flag"] == "" for row in diff["metrics"])

    def test_regression_flagged_beyond_tolerance(self):
        a = _record("a-1-aaaaaa")
        b = _record("b-1-bbbbbb",
                    metrics={"hpwl_final": 1100.0, "rc": 1.05,
                             "scaled_hpwl": 1050.0})
        diff = diff_runs(a, b)
        assert diff["regressions"] == ["hpwl_final"]
        row = next(r for r in diff["metrics"] if r["metric"] == "hpwl_final")
        assert row["flag"] == "REGRESSION"
        assert row["delta"] == pytest.approx(100.0)
        assert row["rel"] == "+10.00%"

    def test_improvement_also_exceeds_band(self):
        # Tolerances are symmetric drift bands (check_regression
        # semantics): a 10% improvement is still flagged for attention.
        a = _record("a-1-aaaaaa")
        b = _record("b-1-bbbbbb",
                    metrics={"hpwl_final": 900.0, "rc": 1.05,
                             "scaled_hpwl": 1050.0})
        assert diff_runs(a, b)["regressions"] == ["hpwl_final"]

    def test_stage_rows_informational(self):
        a = _record("a-1-aaaaaa", stages={"gp": 1.0})
        b = _record("b-1-bbbbbb", stages={"gp": 3.0})
        diff = diff_runs(a, b)
        (row,) = diff["stages"]
        assert row["delta_s"] == pytest.approx(2.0)
        assert row["rel"] == "+200.0%"
        assert diff["regressions"] == []  # runtime never gates

    def test_different_designs_not_comparable(self):
        diff = diff_runs(_record(design="rh01"),
                         _record("z-1-zzzzzz", design="rh02"))
        assert not diff["comparable"]

    def test_exceeds_tolerance_semantics(self):
        # hpwl: (2% rel, 0 abs) -> 1.9% drift passes, 2.1% fails.
        assert not exceeds_tolerance("hpwl", 101.9, 100.0)
        assert exceeds_tolerance("hpwl", 102.1, 100.0)
        # total_overflow: abs bound 1.0 dominates near zero.
        assert not exceeds_tolerance("total_overflow", 0.9, 0.0)
        assert exceeds_tolerance("total_overflow", 1.1, 0.0)
        # unknown metrics get the default band.
        assert exceeds_tolerance("brand_new_metric", 103.0, 100.0)

    def test_run_summary_row_shape(self):
        row = run_summary_row(_record())
        assert row["design"] == "rh01"
        assert row["legal"] == "yes"
        assert row["time_s"] == pytest.approx(2.5)
        assert row["rev"] == "a" * 10


class TestRunsCli:
    @pytest.fixture
    def registry_dir(self, tmp_path):
        root = str(tmp_path / "runs")
        reg = RunRegistry(root)
        reg.append(_record("rh01-base-aaaaaa", created=1.0))
        reg.append(
            _record(
                "rh01-head-bbbbbb", created=2.0,
                metrics={"hpwl_final": 1100.0, "rc": 1.05,
                         "scaled_hpwl": 1050.0},
            )
        )
        return root

    def test_list(self, registry_dir, capsys):
        assert main(["runs", "--runs-dir", registry_dir, "list"]) == 0
        out = capsys.readouterr().out
        assert "rh01-head-bbbbbb" in out and "rh01-base-aaaaaa" in out
        assert out.index("rh01-head") < out.index("rh01-base")  # newest first

    def test_list_empty(self, tmp_path, capsys):
        root = str(tmp_path / "empty")
        RunRegistry(root)
        assert main(["runs", "--runs-dir", root, "list"]) == 0
        assert "no runs recorded" in capsys.readouterr().out

    def test_show(self, registry_dir, capsys):
        assert main(
            ["runs", "--runs-dir", registry_dir, "show", "rh01-base"]
        ) == 0
        out = capsys.readouterr().out
        assert "stage runtimes" in out
        assert '"config_hash": "deadbeef0123"' in out

    def test_diff_flags_regression_exit_1(self, registry_dir, capsys):
        rc = main(
            ["runs", "--runs-dir", registry_dir, "diff",
             "rh01-base", "rh01-head"]
        )
        assert rc == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out + captured.err
        assert "hpwl_final" in captured.out

    def test_diff_clean_exit_0(self, registry_dir, capsys):
        rc = main(
            ["runs", "--runs-dir", registry_dir, "diff",
             "rh01-base", "rh01-base-aaaaaa"]
        )
        assert rc == 0

    def test_missing_dir_exit_2(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_RUNS_DIR", raising=False)
        assert main(["runs", "list"]) == 2
        assert "--runs-dir" in capsys.readouterr().err

    def test_env_var_configures_dir(self, registry_dir, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", registry_dir)
        assert main(["runs", "list"]) == 0
        assert "rh01-base-aaaaaa" in capsys.readouterr().out

    def test_unknown_id_exit_2(self, registry_dir, capsys):
        assert main(
            ["runs", "--runs-dir", registry_dir, "show", "nope"]
        ) == 2
        assert "no run matching" in capsys.readouterr().err

    def test_place_records_run_and_trace_path(self, tmp_path, capsys):
        bench = str(tmp_path / "bench")
        assert main(
            ["generate", "--name", "runcli", "--cells", "120", "--macros",
             "1", "--seed", "9", "--out", bench]
        ) == 0
        runs_dir = str(tmp_path / "runs")
        trace = str(tmp_path / "trace.jsonl")
        rc = main(
            ["place", "--aux", os.path.join(bench, "runcli.aux"),
             "--no-route", "--no-dp", "--runs-dir", runs_dir,
             "--trace", trace]
        )
        assert rc == 0
        reg = RunRegistry(runs_dir)
        assert reg.count() == 1
        (record,) = reg.list()
        validate_run_record(record)
        assert record["design"] == "runcli"
        assert record["trace_path"] == trace
        assert os.path.exists(trace)


class TestSchemaDocs:
    def _docs_dir(self):
        return os.path.join(
            os.path.dirname(__file__), os.pardir, "docs", "schemas"
        )

    def test_committed_trace_schema_matches_builder(self):
        path = os.path.join(
            self._docs_dir(), f"trace-records-v{SCHEMA_VERSION}.schema.json"
        )
        with open(path, encoding="utf-8") as fh:
            assert json.load(fh) == build_trace_schema()

    def test_committed_run_schema_matches_builder(self):
        path = os.path.join(
            self._docs_dir(), f"run-record-v{SCHEMA_RUN_VERSION}.schema.json"
        )
        with open(path, encoding="utf-8") as fh:
            assert json.load(fh) == build_run_schema()

    def test_validate_run_record_rejects_extras(self):
        rec = _record()
        rec["surprise"] = 1
        with pytest.raises(SchemaError, match="surprise"):
            validate_run_record(rec)

    def test_validate_run_record_type_errors(self):
        rec = _record()
        rec["legal"] = "yes"
        with pytest.raises(SchemaError, match="legal"):
            validate_run_record(rec)
