"""Tests for the live telemetry bus (repro.obs.bus).

Covers the PR's streaming acceptance criteria: concurrent producers,
tail-style partial reads of an in-flight JSONL stream, mid-run
visibility of closed GP-iteration spans during a real flow run,
stream/batch parity, flight-recorder dumps on injected faults, and the
heartbeat sink with an injectable clock.
"""

import json
import threading

import pytest

from repro.benchgen import BenchmarkSpec, make_benchmark
from repro.dp import DPConfig
from repro.flow import FlowConfig, NTUplace4H
from repro.obs import (
    CallbackSink,
    FlightRecorder,
    HeartbeatSink,
    JsonlStreamSink,
    Tracer,
    dumps_record,
    read_jsonl,
    use_tracer,
    validate_trace_records,
    write_jsonl,
)
from repro.resilience.faults import inject


def _stream_and_batch(tracer, tmp_path, sink, meta=None):
    """Close the stream, batch-export the same tracer, return both paths."""
    tracer.close_sinks()
    batch = tmp_path / "batch.jsonl"
    write_jsonl(tracer, batch, meta)
    return sink.path, str(batch)


def _sorted_lines(path):
    with open(path, encoding="utf-8") as fh:
        return sorted(line for line in fh.read().splitlines() if line)


class TestStreamBatchParity:
    def test_single_thread_parity(self, tmp_path):
        tracer = Tracer()
        sink = JsonlStreamSink(tmp_path / "stream.jsonl")
        tracer.add_sink(sink)
        with tracer.span("flow"):
            with tracer.span("gp"):
                tracer.metrics.record("gp.hpwl", 0, 12.5)
            tracer.event("milestone", phase="gp")
        stream, batch = _stream_and_batch(tracer, tmp_path, sink)
        assert _sorted_lines(stream) == _sorted_lines(batch)
        validate_trace_records(read_jsonl(stream))

    def test_two_threads_concurrent_nested_spans(self, tmp_path):
        """Two producers stream interleaved records; every span from
        both threads lands in the file and parity with batch holds."""
        tracer = Tracer()
        sink = JsonlStreamSink(tmp_path / "stream.jsonl")
        tracer.add_sink(sink)
        barrier = threading.Barrier(2)

        def worker(name):
            barrier.wait()
            for i in range(20):
                with tracer.span(name):
                    with tracer.span(f"iter[{i}]"):
                        tracer.metrics.record(f"{name}.m", i, float(i))

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stream, batch = _stream_and_batch(tracer, tmp_path, sink)
        assert _sorted_lines(stream) == _sorted_lines(batch)
        records = read_jsonl(stream)
        validate_trace_records(records)
        spans = [r for r in records if r["type"] == "span"]
        # 20 iteration spans + 20 wrappers per thread, nothing dropped.
        assert len(spans) == 80
        paths = {r["path"] for r in spans}
        assert "a/iter[19]" in paths and "b/iter[19]" in paths
        # Thread-local stacks: no cross-thread nesting like "a/b/...".
        assert not any(p.startswith("a/b") or p.startswith("b/a")
                       for p in paths)

    def test_include_open_streams_span_open(self, tmp_path):
        tracer = Tracer()
        sink = JsonlStreamSink(tmp_path / "s.jsonl", include_open=True)
        tracer.add_sink(sink)
        with tracer.span("flow"):
            pass
        tracer.close_sinks()
        types = [r["type"] for r in read_jsonl(sink.path)]
        assert types == ["meta", "span_open", "span", "metrics"]


class TestTailStyleReads:
    def test_partial_read_mid_stream(self, tmp_path):
        """The file is valid after every flushed record, before close."""
        tracer = Tracer()
        sink = JsonlStreamSink(tmp_path / "s.jsonl")
        tracer.add_sink(sink)
        with tracer.span("flow"):
            with tracer.span("gp"):
                pass
            # Mid-run: "flow" is still open, but "flow/gp" has closed
            # and must already be on disk.
            records = read_jsonl(sink.path)
        assert records[0]["type"] == "meta"
        assert [r["path"] for r in records if r["type"] == "span"] == [
            "flow/gp"
        ]
        tracer.close_sinks()

    def test_trailing_partial_line_is_ignored(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(dumps_record({"type": "meta", "schema": 2}) + "\n")
            fh.write(dumps_record({"type": "span", "name": "gp",
                                   "path": "gp", "start": 0.0,
                                   "duration": 1.0, "depth": 0}) + "\n")
            fh.write('{"type": "sam')  # caught mid-write
        records = read_jsonl(path)
        assert [r["type"] for r in records] == ["meta", "span"]

    def test_corrupt_interior_line_still_raises(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"broken\n')
            fh.write(dumps_record({"type": "meta", "schema": 2}) + "\n")
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(path)


def _fast_cfg() -> FlowConfig:
    cfg = FlowConfig()
    cfg.gp.clustering = False
    cfg.gp.max_outer_iterations = 10
    cfg.gp.inner_iterations = 16
    cfg.refine_outer_iterations = 2
    cfg.dp = DPConfig(rounds=1)
    return cfg


def _bench(seed=77):
    return make_benchmark(
        BenchmarkSpec(
            name="streamflow", num_cells=220, num_macros=2,
            num_fixed_macros=1, num_terminals=10, utilization=0.55,
            cap_factor=4.0, seed=seed,
        )
    )


class TestFlowStreaming:
    def test_mid_gp_read_sees_closed_iteration_spans(self, tmp_path):
        """Acceptance: while GP is still running, the streaming file
        already contains closed ``flow/gp/iter[...]`` spans, and the
        final file round-trips + validates and matches batch export."""
        tracer = Tracer()
        sink = JsonlStreamSink(tmp_path / "trace.jsonl")
        tracer.add_sink(sink, meta={"design": "streamflow"})
        mid_run: dict = {}

        def on_record(record):
            # Fires inside GP, the moment an iteration span closes.
            if mid_run or not record["path"].startswith("flow/gp/iter["):
                return
            if record["path"].count("/") != 2:  # the iter span itself
                return
            if int(record["path"].split("[")[1].rstrip("]")) < 2:
                return  # let a couple of iterations land first
            mid_run["records"] = read_jsonl(sink.path)

        tracer.add_sink(CallbackSink(on_record, types={"span"}))
        with use_tracer(tracer):
            NTUplace4H(_fast_cfg()).run(_bench(), route=False)
        stream, batch = _stream_and_batch(
            tracer, tmp_path, sink, meta={"design": "streamflow"}
        )

        # Mid-run snapshot: header present, GP iteration spans closed,
        # flow/gp itself still open (absent).
        snap = mid_run["records"]
        assert snap[0]["type"] == "meta" and snap[0]["design"] == "streamflow"
        snap_paths = [r["path"] for r in snap if r["type"] == "span"]
        assert any(p.startswith("flow/gp/iter[") and p.count("/") == 2
                   for p in snap_paths)
        assert "flow/gp" not in snap_paths and "flow" not in snap_paths
        # Metric samples stream live too.
        assert any(r["type"] == "sample" and r["metric"] == "gp.hpwl"
                   for r in snap)

        # Final file: bit-for-bit parity with batch export (same lines,
        # interleaving aside) and schema-valid end to end.
        assert _sorted_lines(stream) == _sorted_lines(batch)
        records = read_jsonl(stream)
        validate_trace_records(records)
        # A healthy run has no degradation events; spans + samples must
        # be there, bracketed by the meta header and metrics snapshot.
        assert {r["type"] for r in records} >= {"meta", "span", "sample",
                                                "metrics"}

    def test_flight_recorder_dumps_on_injected_fault(self, tmp_path):
        """``raise.legal`` degrades the flow; the attached flight
        recorder must dump its ring buffer with the degradation reason."""
        tracer = Tracer()
        recorder = FlightRecorder(capacity=64,
                                  path=tmp_path / "flight.jsonl")
        tracer.add_sink(recorder)
        cfg = _fast_cfg()
        cfg.gp.max_outer_iterations = 4
        cfg.run_dp = False
        with inject("raise.legal"):
            with use_tracer(tracer):
                result = NTUplace4H(cfg).run(_bench(), route=False)
        assert result.degraded
        dump_path = tmp_path / "flight.jsonl"
        assert dump_path.exists()
        dump = read_jsonl(dump_path)
        assert dump[0]["type"] == "meta"
        assert "legal" in dump[0]["reason"]
        assert dump[0]["buffered"] == len(dump) - 1
        assert len(dump) - 1 <= 64
        # The tail of the run is in the buffer: recent GP spans.
        assert any(r.get("type") == "span" and "gp" in r.get("path", "")
                   for r in dump)


class TestFlightRecorder:
    def test_ring_buffer_keeps_last_n(self, tmp_path):
        tracer = Tracer()
        recorder = FlightRecorder(capacity=5)
        tracer.add_sink(recorder)
        for i in range(20):
            with tracer.span(f"iter[{i}]"):
                pass
        kept = recorder.records()
        assert len(kept) == 5
        # span_open + span pairs; the newest close is iter[19].
        closes = [r for r in kept if r["type"] == "span"]
        assert closes[-1]["path"] == "iter[19]"

    def test_repeat_dumps_never_overwrite(self, tmp_path):
        recorder = FlightRecorder(capacity=4,
                                  path=tmp_path / "flight.jsonl")
        recorder.handle({"type": "event", "name": "x", "path": "",
                         "time": 0.0})
        p1 = recorder.dump(reason="first")
        p2 = recorder.dump(reason="second")
        assert p1 != p2
        assert p1.endswith("flight.jsonl")
        assert p2.endswith("flight-2.jsonl")
        assert read_jsonl(p1)[0]["reason"] == "first"
        assert read_jsonl(p2)[0]["reason"] == "second"

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestHeartbeatSink:
    def test_beats_at_cadence_with_fake_clock(self):
        now = [0.0]
        beats = []
        sink = HeartbeatSink(interval=5.0, emit=beats.append,
                             clock=lambda: now[0])
        tracer = Tracer()
        tracer.add_sink(sink)
        for i in range(10):
            now[0] += 2.0  # 2s per iteration -> a beat every 3rd record
            with tracer.span(f"iter[{i}]"):
                pass
        assert sink.beats == len(beats)
        # 2s per iteration, 5s interval: beats land on iterations 2, 5, 8.
        assert [b["iteration"] for b in beats] == [2, 5, 8]
        assert beats[-1]["elapsed_s"] == pytest.approx(18.0)
        assert all(b["records"] > 0 for b in beats)

    def test_stage_tracks_open_and_close(self):
        now = [0.0]
        beats = []
        sink = HeartbeatSink(interval=0.0, emit=beats.append,
                             clock=lambda: now[0])
        tracer = Tracer()
        tracer.add_sink(sink)

        def tick():
            now[0] += 1.0

        with tracer.span("flow"):
            tick()
            with tracer.span("gp"):
                tick()
        # After flow/gp opened the stage is the full path; after it
        # closed the stage backs out to the parent.
        stages = [b["stage"] for b in beats]
        assert "flow/gp" in stages
        assert stages[-1] == ""  # flow itself closed last

    def test_writes_line_to_stream(self):
        import io

        now = [0.0]
        buf = io.StringIO()
        sink = HeartbeatSink(interval=0.0, stream=buf,
                             clock=lambda: now[0])
        tracer = Tracer()
        tracer.add_sink(sink)
        now[0] = 1.5
        with tracer.span("gp"):
            with tracer.span("iter[3]"):
                now[0] = 2.0
        out = buf.getvalue()
        assert "[heartbeat]" in out
        assert "iter=3" in out


class TestSinkResilience:
    def test_failing_sink_is_detached_not_fatal(self):
        class Exploding(CallbackSink):
            def __init__(self):
                super().__init__(self._boom)
                self.calls = 0

            def _boom(self, record):
                self.calls += 1
                raise RuntimeError("sink bug")

        tracer = Tracer()
        bad = Exploding()
        good = []
        tracer.add_sink(bad)
        tracer.add_sink(CallbackSink(good.append))
        for i in range(10):
            with tracer.span(f"iter[{i}]"):
                pass
        # The broken sink was detached after repeated failures; the
        # healthy one kept receiving and the run never raised.
        assert bad not in tracer.sinks()
        assert bad.calls == 3  # MAX_SINK_FAILURES
        assert len(good) == 20  # 10 opens + 10 closes

    def test_remove_sink(self):
        tracer = Tracer()
        seen = []
        sink = CallbackSink(seen.append)
        tracer.add_sink(sink)
        with tracer.span("a"):
            pass
        tracer.remove_sink(sink)
        with tracer.span("b"):
            pass
        assert all("a" in r.get("path", "") for r in seen)
