"""Tests for the projected conjugate-gradient solver."""

import numpy as np
import pytest

from repro.optim import minimize_cg


def quadratic(center, scale=1.0):
    center = np.asarray(center, dtype=float)

    def f(x):
        d = x - center
        return scale * float(d @ d), 2.0 * scale * d

    return f


class TestUnconstrained:
    def test_quadratic_converges(self):
        f = quadratic([3.0, -2.0, 7.0])
        res = minimize_cg(f, np.zeros(3), max_iter=200, step_init=1.0, rel_tol=1e-12)
        assert np.allclose(res.x, [3, -2, 7], atol=1e-3)

    def test_value_monotone(self):
        f = quadratic(np.arange(10, dtype=float))
        res = minimize_cg(f, np.zeros(10), max_iter=100, step_init=0.5, record=True)
        assert all(b <= a + 1e-12 for a, b in zip(res.trajectory, res.trajectory[1:]))

    def test_already_optimal(self):
        f = quadratic([1.0, 1.0])
        res = minimize_cg(f, np.array([1.0, 1.0]), max_iter=10, step_init=1.0)
        assert res.converged
        assert res.value == pytest.approx(0.0, abs=1e-12)

    def test_anisotropic_quadratic(self):
        scales = np.array([1.0, 50.0, 4.0])

        def f(x):
            return float(scales @ (x * x)), 2.0 * scales * x

        res = minimize_cg(f, np.array([5.0, 5.0, 5.0]), max_iter=300, step_init=0.5, rel_tol=1e-14)
        assert np.abs(res.x).max() < 1e-2

    def test_rosenbrock_descends(self):
        def f(v):
            x, y = v
            val = (1 - x) ** 2 + 100 * (y - x * x) ** 2
            gx = -2 * (1 - x) - 400 * x * (y - x * x)
            gy = 200 * (y - x * x)
            return float(val), np.array([gx, gy])

        x0 = np.array([-1.2, 1.0])
        f0, _ = f(x0)
        res = minimize_cg(f, x0, max_iter=150, step_init=0.1, rel_tol=1e-14)
        assert res.value < 0.1 * f0

    def test_max_iter_respected(self):
        f = quadratic(np.full(5, 100.0))
        res = minimize_cg(f, np.zeros(5), max_iter=3, step_init=0.01, rel_tol=0)
        assert res.iterations <= 3


class TestProjection:
    def test_stays_in_box(self):
        f = quadratic([10.0, 10.0])
        project = lambda v: np.clip(v, 0.0, 2.0)
        res = minimize_cg(f, np.zeros(2), max_iter=50, step_init=1.0, project=project)
        assert (res.x <= 2.0 + 1e-12).all()
        assert np.allclose(res.x, [2.0, 2.0], atol=1e-6)

    def test_projected_start(self):
        f = quadratic([0.0, 0.0])
        project = lambda v: np.clip(v, -1.0, 1.0)
        res = minimize_cg(f, np.array([5.0, -5.0]), max_iter=50, step_init=1.0, project=project)
        assert np.abs(res.x).max() <= 1.0 + 1e-12

    def test_step_max_caps_displacement(self):
        f = quadratic([1000.0])
        trace = []

        def probe(v):
            trace.append(v.copy())
            return v

        minimize_cg(
            f, np.zeros(1), max_iter=5, step_init=1.0, step_max=2.0, project=probe
        )
        steps = [abs(b - a).max() for a, b in zip(trace, trace[1:])]
        assert max(steps) <= 2.0 + 1e-9


class TestEdgeCases:
    def test_zero_gradient_immediate(self):
        def f(x):
            return 0.0, np.zeros_like(x)

        res = minimize_cg(f, np.ones(4), max_iter=10, step_init=1.0)
        assert res.converged
        assert res.iterations <= 1

    def test_empty_vector(self):
        def f(x):
            return 0.0, x

        res = minimize_cg(f, np.zeros(0), max_iter=5, step_init=1.0)
        assert res.converged

    def test_record_off_by_default(self):
        f = quadratic([1.0])
        res = minimize_cg(f, np.zeros(1), max_iter=10, step_init=0.5)
        assert res.trajectory == []
