"""Parallel-execution gates: determinism, lifecycle, and accounting.

The ``repro.parallel`` determinism contract (see the package docstring)
is pinned here:

* ``workers=1`` never builds a pool, so the serial hot paths run
  unchanged (covered implicitly: every equivalence test below compares
  against a ``workers=1`` run).
* ``deterministic=True`` placements, legalizations, and routings are
  bit-identical for **any** worker count.
* Fast mode (``deterministic=False``) is reproducible for a fixed
  worker count.

Plus the lifecycle satellites: no shared-memory segment leaks (clean
path and in-task-exception path alike), checkpoint/resume of a
parallel-GP flow stays bit-identical to an uninterrupted serial run,
and pool-worker CPU seconds surface as ``workers[*]`` profiler rows.
"""

import glob
import os

import numpy as np
import pytest

from repro.baselines.random_place import random_placement
from repro.benchgen import BenchmarkSpec, make_benchmark
from repro.db import Design, Node, Region, Row
from repro.geometry import Rect
from repro.gp import GlobalPlacer, GPConfig
from repro.legal import LegalConfig, Legalizer
from repro.obs import SamplingProfiler
from repro.parallel import (
    RemoteTaskError,
    SharedArrays,
    WorkerPool,
    chunk_ranges,
    drain_worker_cpu,
    logical_cores,
    net_chunk_ranges,
    resolve_workers,
)
from repro.route import GlobalRouter

ECHO = "repro.parallel._testing:echo"
ATTACH = "repro.parallel._testing:attach"
FILL_ROW = "repro.parallel._testing:fill_row"
BOOM = "repro.parallel._testing:boom"
BURN = "repro.parallel._testing:burn"


def shm_segments() -> set:
    """Names of live repro shared-memory segments (Linux /dev/shm)."""
    if not os.path.isdir("/dev/shm"):
        return set()
    return set(glob.glob("/dev/shm/repro_*"))


@pytest.fixture(autouse=True)
def _no_env_workers(monkeypatch):
    # A CI matrix leg exports REPRO_WORKERS=2, which resolve_workers
    # folds into every workers=1 default; these tests compare explicit
    # worker counts, so the ambient override must not leak in.
    monkeypatch.delenv("REPRO_WORKERS", raising=False)


# ----------------------------------------------------------------------
# primitives
# ----------------------------------------------------------------------
class TestPrimitives:
    @pytest.mark.parametrize("n,parts", [(10, 3), (7, 7), (5, 9), (1, 4)])
    def test_chunk_ranges_partition(self, n, parts):
        ranges = chunk_ranges(n, parts)
        assert len(ranges) == min(n, parts)
        assert ranges[0][0] == 0 and ranges[-1][1] == n
        for (lo, hi), (lo2, _) in zip(ranges, ranges[1:]):
            assert hi == lo2
        assert all(hi > lo for lo, hi in ranges)

    def test_chunk_ranges_empty(self):
        assert chunk_ranges(0, 4) == []

    @pytest.mark.parametrize("parts", [1, 2, 3, 8])
    def test_net_chunk_ranges_never_split_a_net(self, parts):
        cstarts = np.array([0, 3, 5, 9, 10, 16], dtype=np.int64)
        ranges = net_chunk_ranges(cstarts, parts)
        assert ranges[0][0] == 0 and ranges[-1][1] == 5
        for (n0, n1), (m0, _) in zip(ranges, ranges[1:]):
            assert n1 == m0
        assert all(n1 > n0 for n0, n1 in ranges)

    def test_resolve_workers_explicit_and_auto(self, monkeypatch):
        assert resolve_workers(1) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(0) == max(1, logical_cores())
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert resolve_workers(1) == 4  # default consults the env
        assert resolve_workers(2) == 2  # explicit wins over the env
        monkeypatch.setenv("REPRO_WORKERS", "junk")
        assert resolve_workers(1) == 1


# ----------------------------------------------------------------------
# pool / shared-memory lifecycle
# ----------------------------------------------------------------------
class TestPoolLifecycle:
    def test_echo_gathers_in_worker_order(self):
        with WorkerPool(3, label="t-echo") as pool:
            out = pool.run(ECHO, ["a", "b", "c"])
        assert out == [(0, "a"), (1, "b"), (2, "c")]

    def test_none_payload_skips_worker(self):
        with WorkerPool(2, label="t-skip") as pool:
            out = pool.run(ECHO, [None, "x"])
        assert out == [None, (1, "x")]

    def test_task_exception_survives_and_pool_stays_usable(self):
        with WorkerPool(2, label="t-boom") as pool:
            with pytest.raises(RemoteTaskError) as exc_info:
                pool.run(BOOM, [{"message": "kaput"}, "ok"])
            assert exc_info.value.kind == "RuntimeError"
            assert "kaput" in str(exc_info.value)
            # Pipes stayed in sync: the next round works on both workers.
            assert pool.run(ECHO, ["p", "q"]) == [(0, "p"), (1, "q")]

    def test_close_is_idempotent(self):
        pool = WorkerPool(1, label="t-close")
        pool.close()
        pool.close()
        assert pool.workers == 0

    def test_shared_rows_round_trip_and_no_leak(self):
        before = shm_segments()
        shm = SharedArrays()
        arr = shm.add("mat", (4, 6))
        pool = WorkerPool(2, label="t-shm")
        try:
            pool.broadcast(
                ATTACH,
                {"specs": shm.specs(), "unregister": pool.attach_unregister},
            )
            pool.run(
                FILL_ROW,
                [{"name": "mat", "row": 0}, {"name": "mat", "row": 3}],
            )
            np.testing.assert_array_equal(arr[0], np.arange(6.0))
            np.testing.assert_array_equal(arr[3], np.arange(6.0) + 3)
        finally:
            pool.close()
            shm.close()
        assert shm_segments() == before

    def test_no_segment_leak_after_in_task_exception(self):
        before = shm_segments()
        shm = SharedArrays()
        shm.add("mat", (3, 3))
        pool = WorkerPool(2, label="t-leak")
        try:
            pool.broadcast(
                ATTACH,
                {"specs": shm.specs(), "unregister": pool.attach_unregister},
            )
            with pytest.raises(RemoteTaskError):
                pool.broadcast(BOOM, {"message": "mid-parallel failure"})
        finally:
            pool.close()
            shm.close()
        assert shm_segments() == before


# ----------------------------------------------------------------------
# GP: bit-identical placements across worker counts
# ----------------------------------------------------------------------
def gp_bench(seed=11, cells=150):
    return make_benchmark(
        BenchmarkSpec(
            name="p", num_cells=cells, num_macros=2, num_fixed_macros=1,
            num_terminals=8, seed=seed,
        )
    )


def gp_config(workers=1, deterministic=True):
    return GPConfig(
        clustering=False, max_outer_iterations=8, inner_iterations=10,
        workers=workers, deterministic=deterministic,
    )


def gp_state(design):
    return (
        np.array([n.cx for n in design.nodes]),
        np.array([n.cy for n in design.nodes]),
        [n.orientation for n in design.nodes],
    )


def place_with(workers, deterministic=True, seed=11):
    d = gp_bench(seed=seed)
    GlobalPlacer(gp_config(workers, deterministic)).place(d)
    return gp_state(d)


class TestGPParallelEquiv:
    def test_deterministic_mode_bit_identical_any_worker_count(self):
        drain_worker_cpu()
        serial = place_with(1)
        cx2, cy2, o2 = place_with(2)
        # Engagement proof: the pool actually ran GP tasks (a vacuous
        # serial fallback would pass the equality below).
        assert "gp" in drain_worker_cpu()
        cx3, cy3, o3 = place_with(3)
        np.testing.assert_array_equal(serial[0], cx2)
        np.testing.assert_array_equal(serial[1], cy2)
        assert serial[2] == o2
        np.testing.assert_array_equal(serial[0], cx3)
        np.testing.assert_array_equal(serial[1], cy3)
        assert serial[2] == o3
        assert shm_segments() == set()

    def test_fast_mode_reproducible_for_fixed_worker_count(self):
        first = place_with(2, deterministic=False)
        second = place_with(2, deterministic=False)
        np.testing.assert_array_equal(first[0], second[0])
        np.testing.assert_array_equal(first[1], second[1])
        assert first[2] == second[2]


# ----------------------------------------------------------------------
# legalization: fence-domain Tetris + row-parallel Abacus
# ----------------------------------------------------------------------
def fenced_design(seed=5, n_cells=120, n_rows=12, sites=120):
    rng = np.random.default_rng(seed)
    d = Design("t")
    for r in range(n_rows):
        d.add_row(
            Row(y=float(r), height=1.0, site_width=0.25, x_min=0.0,
                num_sites=sites)
        )
    width = sites * 0.25
    left = d.add_region(Region("left", rects=[Rect(0.0, 0.0, width / 2, 6.0)]))
    right = d.add_region(
        Region("right", rects=[Rect(width / 2, 6.0, width, 12.0)])
    )
    for i in range(n_cells):
        w = 0.25 * int(rng.integers(2, 8))
        node = Node(
            f"c{i}", w, 1.0,
            x=float(rng.uniform(0, width - w)),
            y=float(rng.uniform(0, n_rows - 1)),
        )
        if i % 3 == 0:
            node.region = left.index
        elif i % 3 == 1:
            node.region = right.index
        d.add_node(node)
    return d


def legal_state(design):
    return (
        np.array([n.x for n in design.nodes]),
        np.array([n.y for n in design.nodes]),
    )


class TestLegalParallelEquiv:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_bit_identical_to_serial(self, workers):
        drain_worker_cpu()
        d1 = fenced_design()
        r1 = Legalizer(LegalConfig(workers=1)).legalize(d1)
        d2 = fenced_design()
        r2 = Legalizer(LegalConfig(workers=workers)).legalize(d2)
        if workers == 2:
            assert "legal" in drain_worker_cpu()  # pool really engaged
        s1, s2 = legal_state(d1), legal_state(d2)
        np.testing.assert_array_equal(s1[0], s2[0])
        np.testing.assert_array_equal(s1[1], s2[1])
        assert r1.max_displacement == r2.max_displacement
        assert r1.ok == r2.ok
        assert shm_segments() == set()


# ----------------------------------------------------------------------
# routing: conflict-free parallel rip-up
# ----------------------------------------------------------------------
def routed_design(seed=3, cells=600):
    d = make_benchmark(
        BenchmarkSpec(name=f"pr{seed}", num_cells=cells, num_macros=2,
                      seed=seed)
    )
    random_placement(d, seed=seed)
    return d


class TestRouteParallelEquiv:
    def test_parallel_ripup_engages_and_matches_serial(self, monkeypatch):
        from repro.parallel.route import ParallelRouter

        calls = []
        orig = ParallelRouter.reroute

        def counted(self, *args, **kwargs):
            calls.append(1)
            return orig(self, *args, **kwargs)

        monkeypatch.setattr(ParallelRouter, "reroute", counted)

        d = routed_design()
        spec = d.routing
        arrays = d.pin_arrays()
        cx, cy = d.pull_centers()
        ref = GlobalRouter(spec, workers=1).route(arrays=arrays, cx=cx, cy=cy)
        par = GlobalRouter(spec, workers=2).route(arrays=arrays, cx=cx, cy=cy)
        assert calls, "parallel rip-up never engaged (design too easy?)"
        np.testing.assert_array_equal(ref.graph.use_e, par.graph.use_e)
        np.testing.assert_array_equal(ref.graph.use_n, par.graph.use_n)
        for attr in ("rc", "total_overflow", "peak_congestion", "vias"):
            assert getattr(ref.metrics, attr) == getattr(par.metrics, attr)
        assert ref.num_segments == par.num_segments
        assert shm_segments() == set()


# ----------------------------------------------------------------------
# checkpoint/resume of a parallel-GP flow
# ----------------------------------------------------------------------
class TestCheckpointResumeParallel:
    def test_killed_parallel_flow_resumes_bit_identical_to_serial(
        self, tmp_path, monkeypatch
    ):
        from repro.dp import DPConfig
        from repro.flow import FlowConfig, NTUplace4H

        def flow_cfg(workers, checkpoint_dir=None):
            cfg = FlowConfig()
            cfg.gp.clustering = False
            cfg.gp.max_outer_iterations = 10
            cfg.gp.inner_iterations = 12
            cfg.refine_outer_iterations = 4
            cfg.dp = DPConfig(rounds=1, congestion_aware=True)
            cfg.gp.workers = workers
            cfg.checkpoint_dir = checkpoint_dir
            return cfg

        def bench():
            return make_benchmark(
                BenchmarkSpec(
                    name="c", num_cells=180, num_macros=2, num_fixed_macros=1,
                    num_terminals=10, utilization=0.55, cap_factor=4.0,
                    seed=81,
                )
            )

        def state(design):
            return [(n.name, n.x, n.y, n.orientation) for n in design.nodes]

        # Reference: one uninterrupted single-worker run.
        ref = bench()
        NTUplace4H(flow_cfg(1)).run(ref, route=False)

        # Victim: two-worker GP, checkpointing on, killed in legalization
        # (so the checkpoint holds a parallel-GP placement).
        ckpt_dir = str(tmp_path / "ck")
        victim = bench()

        def killed(self, design):
            raise KeyboardInterrupt

        with monkeypatch.context() as mp:
            mp.setattr(Legalizer, "legalize", killed)
            with pytest.raises(KeyboardInterrupt):
                NTUplace4H(flow_cfg(2, ckpt_dir)).run(victim, route=False)
        assert shm_segments() == set()  # the interrupted GP pool cleaned up

        resumed = bench()
        result = NTUplace4H(flow_cfg(2, ckpt_dir)).run(
            resumed, resume_from=ckpt_dir
        )
        assert "gp" in result.resumed_stages
        assert state(resumed) == state(ref)
        assert not result.degraded


# ----------------------------------------------------------------------
# profiler: worker CPU surfaces as workers[*] rows
# ----------------------------------------------------------------------
class TestProfilerWorkerCpu:
    def test_drain_worker_cpu_accumulates_per_label(self):
        drain_worker_cpu()
        with WorkerPool(2, label="t-cpu") as pool:
            pool.broadcast(BURN, {"n": 300_000})
        drained = drain_worker_cpu()
        assert drained.get("t-cpu", 0.0) > 0.0
        assert drain_worker_cpu() == {}  # draining clears the registry

    def test_sampling_profiler_merges_worker_rows(self):
        drain_worker_cpu()
        with WorkerPool(2, label="t-prof") as pool:
            profiler = SamplingProfiler()
            with profiler:
                pool.broadcast(BURN, {"n": 300_000})
        rows = profiler.report(top=100)
        worker_rows = [
            r for r in rows
            if r["stage"] == "workers[*]" and r["function"] == "t-prof"
        ]
        assert worker_rows and worker_rows[0]["seconds"] > 0.0
