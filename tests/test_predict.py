"""Tests for the learned congestion predictor (repro.predict) and the
hybrid GP estimator built on it."""

import json
import os

import numpy as np
import pytest

from repro.benchgen import BenchmarkSpec, make_benchmark
from repro.gp.inflation import CongestionInflator
from repro.gp.initial import initial_placement
from repro.predict import (
    FEATURE_NAMES,
    BoostedStumps,
    CongestionPredictor,
    FeatureExtractor,
    RidgeModel,
    train_predictor,
    training_specs,
)
from repro.predict.features import box_mean_3x3
from repro.predict.model import (
    PredictError,
    build_predict_schema,
    load_artifact,
    save_artifact,
    validate_artifact,
)
from repro.predict.train import collect_dataset
from repro.resilience.faults import inject


def small_spec(seed=42, cells=400):
    return BenchmarkSpec(
        name=f"pt{seed}", num_cells=cells, num_macros=2, num_fixed_macros=1,
        macro_area_fraction=0.2, utilization=0.65, cap_factor=4.5, seed=seed,
    )


def placed_design(seed=42, cells=400):
    design = make_benchmark(small_spec(seed, cells))
    initial_placement(design, seed=3)
    return design


@pytest.fixture(scope="module")
def tiny_artifact_path(tmp_path_factory):
    """A real (small) trained artifact shared by the module's tests."""
    specs = [small_spec(seed=11, cells=300), small_spec(seed=12, cells=300)]
    artifact = train_predictor(specs, seed=1, cutoffs=(0, 2), boost_rounds=40)
    path = tmp_path_factory.mktemp("predict") / "model.json"
    save_artifact(artifact, str(path))
    return str(path)


class TestFeatures:
    def test_box_mean_matches_naive(self):
        rng = np.random.default_rng(0)
        a = rng.random((6, 5))
        padded = np.pad(a, 1, mode="edge")
        naive = np.zeros_like(a)
        for i in range(a.shape[0]):
            for j in range(a.shape[1]):
                naive[i, j] = padded[i : i + 3, j : j + 3].mean()
        assert np.allclose(box_mean_3x3(a), naive)

    def test_matrix_shape_and_finiteness(self):
        design = placed_design()
        ex = FeatureExtractor(design.routing)
        X = ex.compute(design.pin_arrays(), *design.pull_centers())
        grid = design.routing.grid
        assert X.shape == (grid.nx * grid.ny, len(FEATURE_NAMES))
        assert np.isfinite(X).all()

    def test_buffers_reused_across_calls(self):
        design = placed_design()
        ex = FeatureExtractor(design.routing)
        arrays = design.pin_arrays()
        cx, cy = design.pull_centers()
        X1 = ex.compute(arrays, cx, cy)
        first = np.array(X1, copy=True)
        X2 = ex.compute(arrays, cx, cy)
        assert X2 is X1  # same owned buffer
        assert np.array_equal(first, X2)  # and same values for same input

    def test_rudy_column_matches_rudy_map(self):
        from repro.route import rudy_map

        design = placed_design()
        ex = FeatureExtractor(design.routing)
        arrays = design.pin_arrays()
        cx, cy = design.pull_centers()
        X = ex.compute(arrays, cx, cy)
        expect = rudy_map(arrays, cx, cy, design.routing.grid)
        # Shared-geometry rasterization accumulates in a different order
        # than rudy_map's golden sweep, so equality is only up to float
        # summation order.
        assert np.allclose(
            X[:, FEATURE_NAMES.index("rudy")], expect.ravel(), rtol=1e-9
        )


class TestModels:
    def _data(self, n=400, f=len(FEATURE_NAMES)):
        rng = np.random.default_rng(7)
        X = rng.random((n, f))
        y = 2.0 * X[:, 0] - 0.5 * X[:, 3] + 0.1 * rng.standard_normal(n)
        return X, y

    def test_ridge_recovers_linear_signal(self):
        X, y = self._data()
        model = RidgeModel.fit(X, y, alpha=1e-6)
        mse = float(np.mean((model.predict(X) - y) ** 2))
        assert mse < 0.02

    def test_ridge_round_trip_exact(self):
        X, y = self._data()
        model = RidgeModel.fit(X, y)
        clone = RidgeModel.from_dict(
            json.loads(json.dumps(model.as_dict()))
        )
        assert np.array_equal(model.predict(X), clone.predict(X))

    def test_stumps_beat_mean_baseline(self):
        X, y = self._data()
        model = BoostedStumps.fit(X, y, rounds=80)
        mse = float(np.mean((model.predict(X) - y) ** 2))
        assert mse < float(np.var(y)) * 0.5

    def test_stumps_round_trip_exact(self):
        X, y = self._data()
        model = BoostedStumps.fit(X, y, rounds=30)
        clone = BoostedStumps.from_dict(
            json.loads(json.dumps(model.as_dict()))
        )
        assert np.array_equal(model.predict(X), clone.predict(X))

    def test_stumps_constant_target(self):
        X, _ = self._data()
        y = np.full(len(X), 3.25)
        model = BoostedStumps.fit(X, y, rounds=10)
        assert np.allclose(model.predict(X), 3.25)


class TestArtifact:
    def test_round_trip_and_validation(self, tiny_artifact_path):
        data = load_artifact(tiny_artifact_path)
        validate_artifact(data)
        predictor = CongestionPredictor(data)
        assert predictor.primary in data["models"]
        assert predictor.provenance["num_samples"] > 0

    def test_schema_file_matches_builder(self):
        docs = os.path.join(
            os.path.dirname(__file__), os.pardir, "docs", "schemas",
            "predict-model-v1.schema.json",
        )
        with open(docs, encoding="utf-8") as fh:
            assert json.load(fh) == build_predict_schema()

    def test_rejects_bad_version(self, tiny_artifact_path):
        data = load_artifact(tiny_artifact_path)
        data["schema"] = 99
        with pytest.raises(PredictError, match="schema"):
            validate_artifact(data)

    def test_rejects_unknown_primary(self, tiny_artifact_path):
        data = load_artifact(tiny_artifact_path)
        data["primary"] = "oracle"
        with pytest.raises(PredictError, match="primary"):
            validate_artifact(data)

    def test_rejects_foreign_features(self, tiny_artifact_path):
        data = load_artifact(tiny_artifact_path)
        data["feature_names"] = ["alpha", "beta"]
        with pytest.raises(PredictError, match="retrain"):
            validate_artifact(data)

    def test_rejects_extra_keys(self, tiny_artifact_path):
        data = load_artifact(tiny_artifact_path)
        data["pickle"] = "no"
        with pytest.raises(PredictError):
            validate_artifact(data)

    def test_packaged_default_artifact_is_valid(self):
        from repro.predict import load_predictor
        from repro.predict.train import default_artifact_path

        assert os.path.exists(default_artifact_path())
        predictor = load_predictor()
        assert predictor is load_predictor()  # memoized
        X = np.zeros((4, len(FEATURE_NAMES)))
        assert (predictor.predict(X) >= 0.0).all()

    def test_predictions_non_negative(self, tiny_artifact_path):
        predictor = CongestionPredictor(load_artifact(tiny_artifact_path))
        rng = np.random.default_rng(3)
        X = rng.random((64, len(FEATURE_NAMES))) * 5.0
        assert (predictor.predict(X) >= 0.0).all()


class TestTraining:
    def test_deterministic_artifact(self):
        specs = [small_spec(seed=21, cells=250)]
        a1 = train_predictor(specs, seed=5, cutoffs=(0,), boost_rounds=15)
        a2 = train_predictor(specs, seed=5, cutoffs=(0,), boost_rounds=15)
        assert json.dumps(a1, sort_keys=True) == json.dumps(a2, sort_keys=True)

    def test_config_hash_tracks_settings(self):
        specs = [small_spec(seed=21, cells=250)]
        a1 = train_predictor(specs, seed=5, cutoffs=(0,), boost_rounds=15)
        a2 = train_predictor(specs, seed=5, cutoffs=(0,), boost_rounds=16)
        assert (
            a1["provenance"]["config_hash"] != a2["provenance"]["config_hash"]
        )

    def test_dataset_shapes(self):
        specs = [small_spec(seed=31, cells=250)]
        X, y, groups = collect_dataset(specs, (0, 1))
        grid = make_benchmark(specs[0]).routing.grid
        assert X.shape == (2 * grid.nx * grid.ny, len(FEATURE_NAMES))
        assert y.shape == (len(X),)
        assert set(groups.tolist()) == {0}

    def test_training_specs_seeded(self):
        assert [s.seed for s in training_specs(3, 0)] != [
            s.seed for s in training_specs(3, 1)
        ]
        assert [s.name for s in training_specs(2)] == ["ptrain00", "ptrain01"]


class TestHybridEstimator:
    def _inflator(self, design, path, **kw):
        kw.setdefault("router_interval", 2)
        kw.setdefault("drift_tol", 1e9)  # scheduling tests ignore drift
        return CongestionInflator(
            design, estimator="hybrid", predict_model=path, **kw
        )

    def test_round_scheduling(self, tiny_artifact_path):
        design = placed_design()
        inf = self._inflator(design, tiny_artifact_path)
        arrays = design.pin_arrays()
        cx, cy = design.pull_centers()
        for _ in range(6):
            cong = inf.congestion_map(arrays, cx, cy)
            assert cong.shape == (design.routing.grid.nx, design.routing.grid.ny)
        # interval 2: rounds 0/2/4 routed, rounds 1/3/5 predicted.
        assert inf.hybrid_stats["router_rounds"] == 3
        assert inf.hybrid_stats["predictor_rounds"] == 3
        assert inf.hybrid_stats["fallback_round"] is None
        assert inf.wants_final_check

    def test_final_router_check_records_drift(self, tiny_artifact_path):
        design = placed_design()
        inf = self._inflator(design, tiny_artifact_path)
        arrays = design.pin_arrays()
        cx, cy = design.pull_centers()
        for _ in range(2):
            inf.congestion_map(arrays, cx, cy)
        drift = inf.final_router_check(arrays, cx, cy)
        assert drift >= 0.0
        assert inf.hybrid_stats["final_drift"] == drift

    def test_drift_fault_forces_fallback(self, tiny_artifact_path):
        design = placed_design()
        inf = self._inflator(design, tiny_artifact_path, drift_tol=0.75)
        arrays = design.pin_arrays()
        cx, cy = design.pull_centers()
        with inject("predict.drift@1"):
            inf.congestion_map(arrays, cx, cy)  # poisoned router round
            assert inf.hybrid_stats["fallback_round"] == 0
            for _ in range(3):
                inf.congestion_map(arrays, cx, cy)
        # Permanent fallback: every later round routed, none predicted.
        assert inf.hybrid_stats["router_rounds"] == 4
        assert inf.hybrid_stats["predictor_rounds"] == 0
        assert not inf.wants_final_check

    def test_hybrid_tracks_router_map_on_router_rounds(self, tiny_artifact_path):
        design = placed_design()
        inf = self._inflator(design, tiny_artifact_path)
        ref = CongestionInflator(design, estimator="router")
        arrays = design.pin_arrays()
        cx, cy = design.pull_centers()
        hybrid0 = np.array(inf.congestion_map(arrays, cx, cy), copy=True)
        routed0 = ref.congestion_map(arrays, cx, cy)
        assert np.array_equal(hybrid0, routed0)

    def test_gp_report_carries_hybrid_stats(self, tiny_artifact_path):
        from repro.gp import GlobalPlacer, GPConfig

        design = make_benchmark(small_spec(seed=44))
        cfg = GPConfig(
            max_outer_iterations=12, clustering=False, seed=3,
            congestion_estimator="hybrid",
            predict_model=tiny_artifact_path, predict_drift_tol=1e9,
        )
        report = GlobalPlacer(cfg).place(design)
        stats = report.inflation
        assert stats["router_rounds"] >= 1
        assert stats["predictor_rounds"] >= 1
        assert stats["final_drift"] is not None

    def test_unknown_estimator_rejected(self):
        design = placed_design()
        with pytest.raises(ValueError, match="estimator"):
            CongestionInflator(design, estimator="oracle")


class TestCalibrationSharing:
    def test_second_inflator_reuses_calibration(self):
        design = placed_design()
        arrays = design.pin_arrays()
        cx, cy = design.pull_centers()
        inf1 = CongestionInflator(design)
        first = np.array(inf1.congestion_map(arrays, cx, cy), copy=True)
        cal = design.congestion_calibration
        assert cal["pin_norm"] is not None
        inf2 = CongestionInflator(design)
        assert inf2._pin_norm == cal["pin_norm"]
        assert inf2.supply is not None
        assert np.array_equal(
            first, inf2.congestion_map(arrays, cx, cy)
        )

    def test_wire_width_change_recalibrates(self):
        design = placed_design()
        arrays = design.pin_arrays()
        cx, cy = design.pull_centers()
        CongestionInflator(design).congestion_map(arrays, cx, cy)
        inf = CongestionInflator(design, wire_width=2.0)
        assert inf._pin_norm is None  # stale calibration not reused

    def test_checkpoint_round_trips_calibration(self):
        from repro.resilience.checkpoint import FlowCheckpoint

        design = placed_design()
        arrays = design.pin_arrays()
        cx, cy = design.pull_centers()
        CongestionInflator(design).congestion_map(arrays, cx, cy)
        original = dict(design.congestion_calibration)
        ckpt = FlowCheckpoint.capture(
            design, completed=["gp"], score_weights=[], result={},
        )
        data = json.loads(json.dumps(ckpt.as_dict()))  # disk round trip
        fresh = make_benchmark(small_spec())
        initial_placement(fresh, seed=3)
        FlowCheckpoint.from_dict(data).apply(fresh)
        restored = fresh.congestion_calibration
        assert restored["pin_norm"] == original["pin_norm"]
        assert restored["wire_width"] == original["wire_width"]
        assert np.array_equal(restored["supply"], original["supply"])
        # Resumed inflator must produce the exact same map.
        a = CongestionInflator(design).congestion_map(arrays, cx, cy)
        b = CongestionInflator(fresh).congestion_map(
            fresh.pin_arrays(), *fresh.pull_centers()
        )
        assert np.array_equal(np.array(a, copy=True), b)

    def test_old_checkpoint_without_calibration_loads(self):
        from repro.resilience.checkpoint import FlowCheckpoint

        design = placed_design()
        ckpt = FlowCheckpoint.capture(
            design, completed=[], score_weights=[], result={},
        )
        data = ckpt.as_dict()
        del data["calibration"]  # pre-predictor checkpoint layout
        restored = FlowCheckpoint.from_dict(data)
        assert restored.calibration == {}
        restored.apply(placed_design())  # no error, nothing restored
