"""Cross-module property-based tests (Hypothesis).

These pin the invariants that hold across whole pipelines: legality is
preserved by every detailed-placement pass, routing conserves net
connectivity, density mass is conserved under arbitrary placements, and
HPWL is invariant under the symmetries it should be.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Design, Net, Node, NodeKind, Pin, Row
from repro.density import BellDensity
from repro.geometry import Rect
from repro.grids import BinGrid
from repro.legal import check_legal, tetris_legalize
from repro.route import GlobalRouter, RoutingSpec
from repro.wirelength import WeightedAverage, hpwl


def build(cell_positions, nets, rows=8, sites=80):
    d = Design("p")
    for r in range(rows):
        d.add_row(Row(y=float(r), height=1.0, site_width=0.25, x_min=0.0, num_sites=sites))
    for k, (x, y) in enumerate(cell_positions):
        d.add_node(Node(f"c{k}", 1.0, 1.0, x=float(x), y=float(y)))
    for j, members in enumerate(nets):
        uniq = sorted(set(members))
        if len(uniq) >= 2:
            d.add_net(Net(f"n{j}", pins=[Pin(node=m) for m in uniq]))
    return d


positions = st.lists(
    st.tuples(st.floats(0, 18, allow_nan=False), st.floats(0, 7, allow_nan=False)),
    min_size=4,
    max_size=20,
)


@st.composite
def placed_designs(draw):
    pts = draw(positions)
    n = len(pts)
    n_nets = draw(st.integers(1, 8))
    nets = [
        draw(st.lists(st.integers(0, n - 1), min_size=2, max_size=5))
        for _ in range(n_nets)
    ]
    return build(pts, nets)


class TestLegalizationProperties:
    @settings(max_examples=20, deadline=None)
    @given(placed_designs())
    def test_tetris_always_legalizes(self, design):
        tetris_legalize(design)
        assert check_legal(design).ok

    @settings(max_examples=20, deadline=None)
    @given(placed_designs())
    def test_tetris_preserves_cell_count_per_domain(self, design):
        before = sum(1 for n in design.nodes if n.is_movable)
        tetris_legalize(design)
        after = sum(1 for n in design.nodes if n.is_movable)
        assert before == after


class TestWirelengthProperties:
    @settings(max_examples=20, deadline=None)
    @given(placed_designs(), st.floats(0.2, 8.0, allow_nan=False))
    def test_wa_sandwich(self, design, gamma):
        arrays = design.pin_arrays()
        cx, cy = design.pull_centers()
        exact = hpwl(arrays, cx, cy)
        wa = WeightedAverage(arrays, design.num_nodes, gamma).value(cx, cy)
        assert -1e-9 <= wa <= exact + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(placed_designs())
    def test_hpwl_mirror_invariance(self, design):
        """Mirroring every coordinate about x=9 leaves HPWL unchanged."""
        arrays = design.pin_arrays()
        cx, cy = design.pull_centers()
        base = hpwl(arrays, cx, cy)
        mirrored = hpwl(arrays, 18.0 - cx, cy)
        assert mirrored == pytest.approx(base, rel=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(placed_designs(), st.floats(1.1, 3.0))
    def test_hpwl_scales_linearly(self, design, scale):
        arrays = design.pin_arrays()
        cx, cy = design.pull_centers()
        base = hpwl(arrays, cx, cy)
        # Pin offsets are all zero in these designs, so scaling centres
        # scales HPWL exactly.
        assert hpwl(arrays, cx * scale, cy * scale) == pytest.approx(
            base * scale, rel=1e-9
        )


class TestDensityProperties:
    @settings(max_examples=15, deadline=None)
    @given(positions)
    def test_mass_conservation_any_placement(self, pts):
        d = build(pts, [])
        grid = BinGrid(Rect(0, 0, 20, 8), 10, 8)
        w, h = d.placed_sizes()
        dens = BellDensity(grid, w, h, d.movable_mask())
        cx, cy = d.pull_centers()
        phi, _, _ = dens.potential(cx, cy)
        assert phi.sum() == pytest.approx(float(len(pts)), rel=1e-9)


class TestRouterProperties:
    @settings(max_examples=10, deadline=None)
    @given(placed_designs())
    def test_router_wirelength_lower_bound(self, design):
        """Routed tile length >= sum of tile manhattan distances of the
        decomposed two-pin connections (each route at least spans them)."""
        design.routing = RoutingSpec.uniform(Rect(0, 0, 20, 8), 10, 8, hcap=50, vcap=50)
        router = GlobalRouter(design.routing)
        arrays = design.pin_arrays()
        cx, cy = design.pull_centers()
        i0, j0, i1, j1 = router.segments_for(arrays, cx, cy)
        lower = float(np.abs(i1 - i0).sum() + np.abs(j1 - j0).sum())
        rr = router.route(design)
        assert rr.graph.wirelength() >= lower - 1e-9

    @settings(max_examples=10, deadline=None)
    @given(placed_designs())
    def test_ample_capacity_no_overflow(self, design):
        design.routing = RoutingSpec.uniform(Rect(0, 0, 20, 8), 10, 8, hcap=1e6, vcap=1e6)
        rr = GlobalRouter(design.routing).route(design)
        assert rr.metrics.total_overflow == 0.0
