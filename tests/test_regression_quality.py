"""End-to-end quality regression guards.

Loose bounds on the flagship numbers so algorithmic regressions (a
broken gradient, a mis-scheduled penalty, a legalizer that scatters
cells) fail CI loudly instead of silently degrading results.  Bounds are
~25-40% above the measured values at the time of writing — tight enough
to catch breakage, loose enough to survive benign numeric drift.
"""

import pytest

from repro.benchgen import make_suite_design
from repro.flow import FlowConfig, NTUplace4H


@pytest.fixture(scope="module")
def rh01_result():
    cfg = FlowConfig()
    cfg.run_dp = False
    design = make_suite_design("rh01")
    return NTUplace4H(cfg).run(design), design


class TestRh01Quality:
    def test_legal(self, rh01_result):
        result, _ = rh01_result
        assert result.legal

    def test_hpwl_bound(self, rh01_result):
        # measured ~27.5k at time of writing
        result, _ = rh01_result
        assert result.hpwl_final < 38_000

    def test_rc_bound(self, rh01_result):
        # measured ~0.74-0.85; anything over 1.05 on this mild design
        # means the placer or router regressed
        result, _ = rh01_result
        assert result.rc < 1.05

    def test_legalization_gap_bounded(self, rh01_result):
        # legalization should cost < 20% HPWL on a mild design
        result, _ = rh01_result
        assert result.hpwl_legal < 1.2 * result.hpwl_gp

    def test_runtime_sane(self, rh01_result):
        # measured ~5s; 60s would mean a complexity regression
        result, _ = rh01_result
        assert result.runtime_seconds < 60.0

    def test_overflow_zero(self, rh01_result):
        result, _ = rh01_result
        assert result.total_overflow < 50.0


class TestCongestedContrast:
    """The headline property on the congested design, as a regression."""

    @pytest.fixture(scope="class")
    def results(self):
        out = {}
        for name, routability in (("4h", True), ("wl", False)):
            cfg = FlowConfig() if routability else FlowConfig.wirelength_only()
            cfg.run_dp = False
            design = make_suite_design("rh02")
            out[name] = NTUplace4H(cfg).run(design)
        return out

    def test_routability_reduces_rc(self, results):
        assert results["4h"].rc <= results["wl"].rc + 0.01

    def test_routability_wins_scaled_hpwl(self, results):
        assert results["4h"].scaled_hpwl <= results["wl"].scaled_hpwl * 1.02

    def test_hpwl_cost_bounded(self, results):
        # the routability levers may cost wirelength, but not > 15%
        assert results["4h"].hpwl_final <= 1.15 * results["wl"].hpwl_final
