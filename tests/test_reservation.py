"""Tests for whitespace reservation (capacity-aware density targets)."""

import numpy as np
import pytest

from repro.benchgen import BenchmarkSpec, make_benchmark
from repro.db import Design, Node
from repro.density import BellDensity
from repro.geometry import Rect
from repro.gp import GlobalPlacer, GPConfig
from repro.grids import BinGrid


class TestTargetScale:
    def grid_and_nodes(self):
        d = Design("t", core=Rect(0, 0, 16, 16))
        for i in range(10):
            d.add_node(Node(f"c{i}", 1, 1, x=float(i), y=1.0))
        grid = BinGrid(d.core, 8, 8)
        w, h = d.placed_sizes()
        return d, grid, w, h

    def test_scale_reduces_target(self):
        d, grid, w, h = self.grid_and_nodes()
        full = BellDensity(grid, w, h, d.movable_mask())
        scale = np.ones((8, 8))
        scale[:, :4] = 0.5
        scaled = BellDensity(grid, w, h, d.movable_mask(), target_scale=scale)
        t_full = full.target()
        t_scaled = scaled.target()
        # scaled bins attract proportionally less of the (same) total mass
        assert t_scaled[:, :4].sum() < t_full[:, :4].sum()
        # total target still covers the movable area
        assert t_scaled.sum() >= scaled.areas[d.movable_mask()].sum() - 1e-6

    def test_shape_mismatch_raises(self):
        d, grid, w, h = self.grid_and_nodes()
        with pytest.raises(ValueError):
            BellDensity(grid, w, h, d.movable_mask(), target_scale=np.ones((3, 3)))

    def test_scale_clipped_to_unit(self):
        d, grid, w, h = self.grid_and_nodes()
        scale = np.full((8, 8), 5.0)  # silly values get clipped
        dens = BellDensity(grid, w, h, d.movable_mask(), target_scale=scale)
        plain = BellDensity(grid, w, h, d.movable_mask())
        assert np.allclose(dens.free, plain.free)


class TestReservationScale:
    def bench(self, band):
        return make_benchmark(
            BenchmarkSpec(
                name="r", num_cells=200, num_macros=0, num_fixed_macros=0,
                num_terminals=4, cap_factor=2.0, congested_band=band, seed=23,
            )
        )

    def test_uniform_supply_no_reservation(self):
        d = self.bench(band=0.0)
        grid = BinGrid(d.core, 16, 16)
        scale = GlobalPlacer._reservation_scale(d, grid, floor=0.5)
        assert scale.min() >= 0.99  # nothing starved -> no reservation

    def test_band_gets_reserved(self):
        d = self.bench(band=0.5)
        grid = BinGrid(d.core, 16, 16)
        scale = GlobalPlacer._reservation_scale(d, grid, floor=0.5)
        mid = scale[:, 6:10]
        edge = scale[:, :3]
        assert mid.mean() < edge.mean()
        assert scale.min() >= 0.5  # floor respected

    def test_gp_runs_with_reservation(self):
        d = self.bench(band=0.5)
        cfg = GPConfig(
            clustering=False, routability=True, whitespace_reservation=True,
            max_outer_iterations=8, optimize_orientations=False,
        )
        report = GlobalPlacer(cfg).place(d)
        assert report.num_iterations > 0
