"""Tests for repro.resilience: faults, guards, watchdogs, degraded flows."""

import math
import os

import numpy as np
import pytest

from repro.benchgen import BenchmarkSpec, make_benchmark
from repro.dp import DPConfig
from repro.flow import FlowConfig, NTUplace4H
from repro.resilience import (
    FAULT_POINTS,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    NumericalGuard,
    StageWatchdog,
    all_finite,
    fault_plan,
    inject,
    maybe_raise,
    reset_clock_skew,
    reset_plan,
)


def bench(seed=61, **kw):
    base = dict(
        name="r", num_cells=250, num_macros=2, num_fixed_macros=1,
        num_terminals=12, utilization=0.55, cap_factor=4.0, seed=seed,
    )
    base.update(kw)
    return make_benchmark(BenchmarkSpec(**base))


def fast_flow(**kw) -> FlowConfig:
    cfg = FlowConfig()
    cfg.gp.clustering = False
    cfg.gp.max_outer_iterations = 14
    cfg.gp.inner_iterations = 16
    cfg.refine_outer_iterations = 6
    cfg.dp = DPConfig(rounds=1, congestion_aware=True)
    for k, v in kw.items():
        setattr(cfg, k, v)
    return cfg


def reasons(result):
    return [(d["stage"], d["reason"]) for d in result.degradation]


@pytest.fixture(autouse=True)
def _isolated_faults():
    yield
    reset_plan()
    reset_clock_skew()


class TestFaultSpecs:
    def test_parse_point_only(self):
        spec = FaultSpec.parse("raise.dp")
        assert spec.point == "raise.dp" and spec.hit == 1 and spec.value is None

    def test_parse_hit_and_value(self):
        spec = FaultSpec.parse("clock.skew@3=12.5")
        assert spec.point == "clock.skew"
        assert spec.hit == 3
        assert float(spec.value) == 12.5

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultSpec.parse("raise.nonsense")

    def test_registry_documents_every_point(self):
        for point, doc in FAULT_POINTS.items():
            assert isinstance(doc, str) and doc

    def test_docs_table_lists_every_point(self):
        # docs/robustness.md carries the operator-facing fault-point
        # table; a point missing there is an undocumented chaos knob.
        docs = os.path.join(
            os.path.dirname(__file__), "..", "docs", "robustness.md"
        )
        with open(docs, encoding="utf-8") as fh:
            text = fh.read()
        for point in FAULT_POINTS:
            assert f"`{point}`" in text, f"{point} missing from docs"

    def test_parse_probability(self):
        spec = FaultSpec.parse("serve.http_500~0.25")
        assert spec.point == "serve.http_500"
        assert spec.probability == 0.25

    def test_probability_bounds_checked(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec.parse("serve.http_500~0")
        with pytest.raises(ValueError, match="probability"):
            FaultSpec.parse("serve.http_500~1.5")

    def test_hit_and_probability_exclusive(self):
        with pytest.raises(ValueError, match="mixes"):
            FaultSpec.parse("serve.http_500@2~0.5")

    def test_probabilistic_plan_seeded_and_reproducible(self):
        text = "serve.http_500~0.3,seed=42"
        counts = []
        for _ in range(2):
            plan = FaultPlan.parse(text)
            fired = sum(
                1 for _ in range(200)
                if plan.check("serve.http_500") is not None
            )
            counts.append((fired, plan.fire_count()))
        # Same seed, same draw stream: identical schedules; and a ~0.3
        # probability over 200 checks fires many times, not once.
        assert counts[0] == counts[1]
        assert 30 < counts[0][0] < 100
        assert counts[0][0] == counts[0][1]

    def test_different_seeds_differ(self):
        def schedule(seed):
            plan = FaultPlan.parse(f"serve.http_500~0.3,seed={seed}")
            return [
                plan.check("serve.http_500") is not None
                for _ in range(100)
            ]

        assert schedule(1) != schedule(2)

    def test_plan_fires_on_nth_hit_once(self):
        plan = FaultPlan.parse("raise.gp@3")
        assert plan.check("raise.gp") is None
        assert plan.check("raise.gp") is None
        assert plan.check("raise.gp") is not None
        # One-shot: later hits never re-fire.
        assert plan.check("raise.gp") is None
        assert len(plan.fired()) == 1

    def test_inject_scopes_and_restores(self):
        before = fault_plan()
        with inject("raise.dp"):
            assert fault_plan().has("raise.dp")
            with pytest.raises(FaultInjected) as exc:
                maybe_raise("raise.dp")
            assert exc.value.point == "raise.dp"
        assert fault_plan() is before

    def test_env_var_parsed_on_first_use(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "raise.route,clock.skew=2")
        reset_plan()
        plan = fault_plan()
        assert plan.has("raise.route") and plan.has("clock.skew")


class TestNumericalGuard:
    def snap(self, guard, hpwl=100.0, gamma=1.0):
        guard.commit(
            np.arange(4.0), gamma=gamma, step_init=1.0, step_max=8.0, hpwl=hpwl
        )

    def test_all_finite(self):
        assert all_finite(1.0, -2.0, 0.0)
        assert not all_finite(1.0, float("nan"))
        assert not all_finite(float("inf"))

    def test_recover_backs_off_snapshot(self):
        guard = NumericalGuard(max_retries=2, backoff=0.5, gamma_inflate=2.0)
        self.snap(guard)
        snap = guard.recover(outer=3, reason="nonfinite")
        assert snap is not None
        assert snap.step_init == 0.5 and snap.step_max == 4.0
        assert snap.gamma == 2.0
        assert guard.rollbacks == 1
        assert guard.events[0].as_dict()["reason"] == "nonfinite"

    def test_retries_bounded(self):
        guard = NumericalGuard(max_retries=1)
        self.snap(guard)
        assert guard.recover(1, "nonfinite") is not None
        assert guard.exhausted
        assert guard.recover(2, "nonfinite") is None
        assert guard.last_good is not None  # caller restores this and stops

    def test_no_snapshot_no_recovery(self):
        guard = NumericalGuard()
        assert not guard.can_recover
        assert guard.recover(0, "nonfinite") is None

    def test_divergence_needs_patience(self):
        guard = NumericalGuard(divergence_ratio=10.0, divergence_patience=2)
        self.snap(guard, hpwl=100.0)
        assert not guard.diverged(5000.0)  # streak 1
        assert guard.diverged(5000.0)      # streak 2 -> fires

    def test_divergence_streak_resets(self):
        guard = NumericalGuard(divergence_ratio=10.0, divergence_patience=2)
        self.snap(guard, hpwl=100.0)
        assert not guard.diverged(5000.0)
        assert not guard.diverged(200.0)   # back in range resets the streak
        assert not guard.diverged(5000.0)

    def test_infinite_baseline_disarms_divergence(self):
        guard = NumericalGuard(divergence_ratio=2.0, divergence_patience=1)
        self.snap(guard, hpwl=math.inf)  # pre-loop snapshot
        assert not guard.diverged(1e12)


class TestStageWatchdog:
    def test_disarmed_is_free(self):
        wd = StageWatchdog("gp")
        assert not wd.expired()
        assert wd.elapsed == 0.0
        assert not wd.tripped

    def test_budget_expiry_via_clock_skew(self):
        # @2: the first clock read is the constructor's start timestamp;
        # the skew must land on the expiry check that follows it.
        with inject("clock.skew@2=1000"):
            wd = StageWatchdog("dp", budget_seconds=60.0)
            assert wd.expired()  # the skew fault jumps the clock forward
        assert wd.tripped
        assert wd.describe()["elapsed_seconds"] > 60.0

    def test_forced_expiry(self):
        with inject("watchdog.expire.gp"):
            wd = StageWatchdog("gp")
            assert wd.expired()
            desc = wd.describe()
        assert desc["forced"] is True
        assert desc["budget_seconds"] is None
        assert "stage" not in desc  # callers attach their own stage label

    def test_expiry_latches(self):
        with inject("watchdog.expire.dp"):
            wd = StageWatchdog("dp")
            assert wd.expired()
        # The fault fired once, but the watchdog stays tripped.
        assert wd.expired()

    def test_within_budget_not_expired(self):
        wd = StageWatchdog("route", budget_seconds=3600.0)
        assert not wd.expired()


class TestFaultInjectedFlows:
    """Acceptance: every fault yields a completed, degraded FlowResult."""

    def test_nan_gradient_recovers_and_flags(self):
        d = bench(seed=71)
        with inject("gp.nan_gradient@1"):
            result = NTUplace4H(fast_flow()).run(d, route=False)
        assert result.degraded
        assert ("gp", "numerical_recovery") in reasons(result)
        assert result.gp_report.guard_rollbacks >= 1
        # Recovery is visible in telemetry.
        resilience = result.telemetry["resilience"]
        assert resilience["degraded"] is True
        assert resilience["guard_events"]
        assert resilience["guard_events"][0]["reason"] == "nonfinite"
        # The flow still finished with a finite placement.
        assert math.isfinite(result.hpwl_final) and result.hpwl_final > 0

    def test_route_watchdog_falls_back_to_rudy(self):
        d = bench(seed=72)
        with inject("watchdog.expire.route"):
            result = NTUplace4H(fast_flow()).run(d)
        assert result.degraded
        assert ("route", "budget_exhausted") in reasons(result)
        # Congestion metrics come from the RUDY estimate, not the router.
        assert result.route_result is None
        assert result.rc > 0
        assert result.scaled_hpwl >= result.hpwl_final

    @pytest.mark.parametrize(
        "point,stage",
        [
            ("raise.gp", "gp"),
            ("raise.refine", "macro_legal_refine"),
            ("raise.legal", "legal"),
            ("raise.dp", "dp"),
            ("raise.route", "route"),
        ],
    )
    def test_stage_exception_degrades_not_crashes(self, point, stage):
        d = bench(seed=73)
        with inject(point):
            result = NTUplace4H(fast_flow()).run(d)
        assert result.degraded
        assert (stage, "exception") in reasons(result)
        for entry in result.degradation:
            assert "stage" in entry and "reason" in entry
        assert math.isfinite(result.hpwl_final)

    def test_legal_exception_uses_tetris_fallback(self):
        d = bench(seed=74)
        with inject("raise.legal"):
            result = NTUplace4H(fast_flow()).run(d, route=False)
        assert ("legal", "tetris_fallback") in reasons(result)
        assert result.legal  # the fallback still legalized the design

    def test_gp_watchdog_budget_exhausted(self):
        d = bench(seed=75)
        with inject("watchdog.expire.gp"):
            result = NTUplace4H(fast_flow()).run(d, route=False)
        assert ("gp", "budget_exhausted") in reasons(result)
        assert result.gp_report.budget_exhausted
        assert result.legal  # downstream stages still ran

    def test_dp_watchdog_budget_exhausted(self):
        d = bench(seed=76)
        with inject("watchdog.expire.dp"):
            result = NTUplace4H(fast_flow()).run(d, route=False)
        assert ("dp", "budget_exhausted") in reasons(result)
        assert result.dp_report.budget_exhausted

    def test_happy_path_not_degraded(self):
        d = bench(seed=77)
        result = NTUplace4H(fast_flow()).run(d, route=False)
        assert not result.degraded
        assert result.degradation == []
        assert result.telemetry["resilience"]["degradation"] == []
