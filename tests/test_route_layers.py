"""Tests for the per-layer routing model and spreading report."""

import numpy as np
import pytest

from repro.db import Design, Net, Node, Pin
from repro.geometry import Rect
from repro.route import (
    GlobalRouter,
    LayerSpec,
    RoutingSpec,
    spread_over_layers,
)

M_STACK = [
    LayerSpec("metal2", "H", 4.0),
    LayerSpec("metal3", "V", 4.0),
    LayerSpec("metal4", "H", 8.0),
    LayerSpec("metal5", "V", 8.0),
]


def routed_design():
    d = Design("l", core=Rect(0, 0, 16, 16))
    for k, (x, y) in enumerate(((1, 1), (13, 1), (1, 13), (13, 13))):
        n = d.add_node(Node(f"c{k}", 0.5, 0.5))
        n.move_center_to(float(x), float(y))
    d.add_net(Net("n0", pins=[Pin(node=0), Pin(node=1)]))
    d.add_net(Net("n1", pins=[Pin(node=0), Pin(node=2)]))
    d.add_net(Net("n2", pins=[Pin(node=1), Pin(node=3)]))
    d.routing = RoutingSpec.from_layers(d.core, 8, 8, M_STACK)
    return d


class TestLayerSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            LayerSpec("m", "D", 1.0)
        with pytest.raises(ValueError):
            LayerSpec("m", "H", -1.0)

    def test_from_layers_aggregates(self):
        spec = RoutingSpec.from_layers(Rect(0, 0, 8, 8), 4, 4, M_STACK)
        assert spec.hcap[0, 0] == pytest.approx(12.0)
        assert spec.vcap[0, 0] == pytest.approx(12.0)
        assert len(spec.layers) == 4

    def test_copy_keeps_layers(self):
        spec = RoutingSpec.from_layers(Rect(0, 0, 8, 8), 4, 4, M_STACK)
        assert spec.copy().layers == spec.layers


class TestSpreading:
    def test_wirelength_conserved(self):
        d = routed_design()
        rr = GlobalRouter(d.routing).route(d)
        usage = spread_over_layers(rr.graph)
        h_total = sum(u.wirelength for u in usage if u.layer.direction == "H")
        v_total = sum(u.wirelength for u in usage if u.layer.direction == "V")
        assert h_total == pytest.approx(float(rr.graph.use_e.sum()))
        assert v_total == pytest.approx(float(rr.graph.use_n.sum()))

    def test_share_proportional_to_capacity(self):
        d = routed_design()
        rr = GlobalRouter(d.routing).route(d)
        usage = {u.layer.name: u for u in spread_over_layers(rr.graph)}
        # metal4 has 2x metal2's capacity -> 2x the assigned length
        assert usage["metal4"].wirelength == pytest.approx(
            2 * usage["metal2"].wirelength
        )

    def test_peak_utilization_equal_across_same_direction(self):
        """Proportional spreading preserves utilization per direction."""
        d = routed_design()
        rr = GlobalRouter(d.routing).route(d)
        usage = [u for u in spread_over_layers(rr.graph) if u.layer.direction == "H"]
        assert usage[0].peak_utilization == pytest.approx(usage[1].peak_utilization)

    def test_no_layers_raises(self):
        d = routed_design()
        d.routing = RoutingSpec.uniform(d.core, 8, 8)
        rr = GlobalRouter(d.routing).route(d)
        with pytest.raises(ValueError):
            spread_over_layers(rr.graph)

    def test_as_row(self):
        d = routed_design()
        rr = GlobalRouter(d.routing).route(d)
        row = spread_over_layers(rr.graph)[0].as_row()
        assert {"layer", "dir", "capacity", "wirelength", "peak_util"} <= set(row)


class TestLayeredIO:
    def test_route_file_roundtrip_aggregates(self, tmp_path):
        from repro.io import read_bookshelf, write_bookshelf
        from repro.db import Row

        d = routed_design()
        d.add_row(Row(y=0, height=1, site_width=0.25, x_min=0, num_sites=64))
        aux = write_bookshelf(d, str(tmp_path))
        text = open(str(tmp_path / "l.route")).read()
        assert "Grid : 8 8 4" in text
        assert len(text.split("HorizontalCapacity :")[1].splitlines()[0].split()) == 2
        d2 = read_bookshelf(aux)
        assert np.allclose(d2.routing.hcap, d.routing.hcap)
        assert np.allclose(d2.routing.vcap, d.routing.vcap)
