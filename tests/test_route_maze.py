"""Tests for the A* maze router."""

import numpy as np
import pytest

from repro.route.maze import maze_route, _path_to_runs


def uniform(nx=8, ny=8, value=1.0):
    return np.full((nx - 1, ny), value), np.full((nx, ny - 1), value)


class TestMaze:
    def test_straight_line(self):
        ce, cn = uniform()
        cost, runs = maze_route(ce, cn, (1, 2), (6, 2), bend_cost=0.0)
        assert cost == pytest.approx(5.0)
        assert runs == [("H", 2, 1, 6)]

    def test_manhattan_optimal_uniform(self):
        ce, cn = uniform()
        cost, runs = maze_route(ce, cn, (0, 0), (5, 6), bend_cost=0.0)
        assert cost == pytest.approx(11.0)

    def test_same_tile(self):
        ce, cn = uniform()
        cost, runs = maze_route(ce, cn, (3, 3), (3, 3))
        assert cost == 0.0
        assert runs == []

    def test_detours_around_wall(self):
        ce, cn = uniform()
        # wall: block vertical edges along row j=3 except column 7
        cn[:7, 3] = 1e9
        cost, runs = maze_route(ce, cn, (0, 0), (0, 7), bend_cost=0.0)
        assert cost < 1e6
        # must pass through column 7
        cols = {line for kind, line, _, _ in runs if kind == "V"}
        assert 7 in cols

    def test_window_restricts(self):
        ce, cn = uniform()
        cn[:7, 3] = 1e9  # wall forces detour via column 7
        cost, runs = maze_route(ce, cn, (0, 0), (0, 7), window=(0, 0, 3, 7))
        # detour not allowed inside window -> expensive edge used
        assert cost >= 1e6 or runs is None

    def test_bend_cost_prefers_straight(self):
        ce, cn = uniform()
        cost0, runs0 = maze_route(ce, cn, (0, 0), (5, 5), bend_cost=0.0)
        cost1, runs1 = maze_route(ce, cn, (0, 0), (5, 5), bend_cost=0.5)
        assert len(runs1) <= 3  # one bend only with bend penalty

    def test_congestion_aware(self):
        ce, cn = uniform()
        ce[:, 0] = 50.0  # bottom row expensive
        cost, runs = maze_route(ce, cn, (0, 0), (7, 0), bend_cost=0.0)
        # cheaper to go up, across, and back down
        assert cost < 50 * 7
        assert any(kind == "V" for kind, *_ in runs)


class TestPathToRuns:
    def test_single_h(self):
        runs = _path_to_runs([(0, 0), (1, 0), (2, 0)])
        assert runs == [("H", 0, 0, 2)]

    def test_l_shape(self):
        runs = _path_to_runs([(0, 0), (1, 0), (1, 1), (1, 2)])
        assert runs == [("H", 0, 0, 1), ("V", 1, 0, 2)]

    def test_zigzag(self):
        path = [(0, 0), (1, 0), (1, 1), (2, 1), (2, 2)]
        runs = _path_to_runs(path)
        assert len(runs) == 4

    def test_reverse_direction(self):
        runs = _path_to_runs([(5, 0), (4, 0), (3, 0)])
        assert runs == [("H", 0, 3, 5)]
