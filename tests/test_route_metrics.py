"""Tests for ACE / RC / scaled-HPWL congestion metrics."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.route import GridGraph, RoutingSpec, ace, congestion_metrics, rc_score, scaled_hpwl


class TestACE:
    def test_uniform(self):
        c = np.full(100, 0.5)
        assert ace(c, 0.02) == pytest.approx(0.5)

    def test_top_fraction(self):
        c = np.concatenate([np.zeros(90), np.full(10, 2.0)])
        assert ace(c, 0.10) == pytest.approx(2.0)
        assert ace(c, 0.20) == pytest.approx(1.0)

    def test_empty(self):
        assert ace(np.zeros(0), 0.01) == 0.0

    def test_clips_infinite(self):
        c = np.array([np.inf, 1.0, 0.5, 0.1])
        assert ace(c, 0.25) <= 10.0

    def test_monotone_in_fraction(self):
        rng = np.random.default_rng(0)
        c = rng.uniform(0, 2, 500)
        vals = [ace(c, f) for f in (0.005, 0.02, 0.1, 0.5)]
        assert vals == sorted(vals, reverse=True)


class TestRC:
    def test_rc_is_mean_of_levels(self):
        c = np.full(1000, 0.7)
        assert rc_score(c) == pytest.approx(0.7)

    def test_rc_empty(self):
        assert rc_score(np.zeros(0)) == 0.0


class TestScaledHPWL:
    def test_no_penalty_below_one(self):
        assert scaled_hpwl(1000.0, 0.95) == 1000.0

    def test_penalty_above_one(self):
        # RC 1.10 -> 10 percentage points x 0.03 = +30%
        assert scaled_hpwl(1000.0, 1.10) == pytest.approx(1300.0)

    def test_exactly_one(self):
        assert scaled_hpwl(1000.0, 1.0) == 1000.0

    def test_custom_penalty(self):
        assert scaled_hpwl(1000.0, 1.10, penalty=0.01) == pytest.approx(1100.0)


class TestCongestionMetrics:
    def test_from_graph(self):
        g = GridGraph(RoutingSpec.uniform(Rect(0, 0, 8, 8), 4, 4, hcap=2, vcap=2))
        g.add_horizontal_run(0, 0, 3)
        g.add_horizontal_run(0, 0, 3)
        g.add_horizontal_run(0, 0, 3)  # usage 3 over cap 2
        m = congestion_metrics(g)
        assert m.total_overflow == pytest.approx(3.0)
        assert m.routed_wirelength == pytest.approx(9.0)
        assert m.rc > 0
        assert m.peak_congestion == pytest.approx(1.5)
        row = m.as_row()
        assert "RC" in row and "ACE0.5%" in row

    def test_clean_graph(self):
        g = GridGraph(RoutingSpec.uniform(Rect(0, 0, 8, 8), 4, 4))
        m = congestion_metrics(g)
        assert m.total_overflow == 0
        assert m.rc == 0
