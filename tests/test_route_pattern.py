"""Tests for pattern routing (L/Z) and prefix-cost machinery."""

import numpy as np
import pytest

from repro.route.pattern import (
    best_z_route,
    h_run_cost,
    l_route_costs,
    l_route_runs,
    prefix_costs,
    runs_cost,
    v_run_cost,
)


def uniform_costs(nx=8, ny=8, value=1.0):
    return np.full((nx - 1, ny), value), np.full((nx, ny - 1), value)


class TestPrefixCosts:
    def test_h_run(self):
        ce, cn = uniform_costs()
        pe, pn = prefix_costs(ce, cn)
        assert h_run_cost(pe, 3, 1, 5) == pytest.approx(4.0)
        assert h_run_cost(pe, 3, 5, 1) == pytest.approx(4.0)  # order-free

    def test_v_run(self):
        ce, cn = uniform_costs()
        pe, pn = prefix_costs(ce, cn)
        assert v_run_cost(pn, 2, 0, 7) == pytest.approx(7.0)

    def test_nonuniform(self):
        ce, cn = uniform_costs()
        ce[2, 0] = 10.0
        pe, pn = prefix_costs(ce, cn)
        assert h_run_cost(pe, 0, 0, 4) == pytest.approx(3 + 10)

    def test_zero_length_run(self):
        ce, cn = uniform_costs()
        pe, pn = prefix_costs(ce, cn)
        assert h_run_cost(pe, 0, 3, 3) == 0.0


class TestLRoutes:
    def test_costs_equal_uniform(self):
        ce, cn = uniform_costs()
        pe, pn = prefix_costs(ce, cn)
        chv, cvh = l_route_costs(pe, pn, np.array([1]), np.array([1]), np.array([5]), np.array([6]))
        assert chv[0] == pytest.approx(cvh[0]) == pytest.approx(4 + 5)

    def test_congestion_steers_choice(self):
        ce, cn = uniform_costs()
        ce[:, 1] = 100.0  # row 1 horizontal edges expensive
        pe, pn = prefix_costs(ce, cn)
        chv, cvh = l_route_costs(pe, pn, np.array([0]), np.array([1]), np.array([5]), np.array([6]))
        assert cvh[0] < chv[0]  # route vertically first, then along row 6

    def test_runs_degenerate_dropped(self):
        runs = l_route_runs(2, 3, 2, 7, True)  # same column
        assert runs == [("V", 2, 3, 7)]
        runs = l_route_runs(2, 3, 6, 3, False)  # same row
        assert runs == [("H", 3, 2, 6)]

    def test_runs_hv_vs_vh(self):
        hv = l_route_runs(1, 1, 4, 5, True)
        assert hv == [("H", 1, 1, 4), ("V", 4, 1, 5)]
        vh = l_route_runs(1, 1, 4, 5, False)
        assert vh == [("V", 1, 1, 5), ("H", 5, 1, 4)]

    def test_runs_cost_consistency(self):
        ce, cn = uniform_costs()
        ce[3, 1] = 7.0
        pe, pn = prefix_costs(ce, cn)
        chv, _ = l_route_costs(pe, pn, np.array([1]), np.array([1]), np.array([5]), np.array([6]))
        runs = l_route_runs(1, 1, 5, 6, True)
        assert runs_cost(pe, pn, runs) == pytest.approx(float(chv[0]))


class TestZRoutes:
    def test_z_never_worse_than_l_uniform(self):
        ce, cn = uniform_costs()
        pe, pn = prefix_costs(ce, cn)
        z_cost, z_runs = best_z_route(pe, pn, 1, 1, 6, 6)
        chv, cvh = l_route_costs(pe, pn, np.array([1]), np.array([1]), np.array([6]), np.array([6]))
        assert z_cost <= min(float(chv[0]), float(cvh[0])) + 1e-9

    def test_z_avoids_blocked_corner(self):
        ce, cn = uniform_costs()
        cn[6, :] = 100.0  # vertical edges in column 6 blocked
        cn[1, :] = 100.0  # and column 1
        pe, pn = prefix_costs(ce, cn)
        cost, runs = best_z_route(pe, pn, 1, 1, 6, 6)
        # must bend at an intermediate column, 3 runs
        assert len(runs) == 3
        assert cost < 100

    def test_z_falls_back_to_l_when_thin(self):
        ce, cn = uniform_costs()
        pe, pn = prefix_costs(ce, cn)
        cost, runs = best_z_route(pe, pn, 2, 2, 3, 6)  # adjacent columns: no HVH bend room, VHV allowed
        assert runs is not None
        assert runs_cost(pe, pn, runs) == pytest.approx(cost)

    def test_z_straight_line(self):
        ce, cn = uniform_costs()
        pe, pn = prefix_costs(ce, cn)
        cost, runs = best_z_route(pe, pn, 1, 3, 6, 3)
        assert runs == [("H", 3, 1, 6)]
        assert cost == pytest.approx(5.0)

    def test_z_runs_cover_endpoints(self):
        ce, cn = uniform_costs(12, 12)
        rng = np.random.default_rng(3)
        ce *= rng.uniform(0.5, 3.0, ce.shape)
        cn *= rng.uniform(0.5, 3.0, cn.shape)
        pe, pn = prefix_costs(ce, cn)
        cost, runs = best_z_route(pe, pn, 2, 3, 9, 8)
        # walk the runs: they must form a connected path from start to goal
        assert runs[0][0] in "HV"
        assert runs_cost(pe, pn, runs) == pytest.approx(cost)
