"""Equivalence tests: optimized router hot paths vs their references.

Every optimized path introduced by the router overhaul (vectorized
decomposition, CSR-incidence offender scan, diff-array commits,
incremental cost refresh, array-based maze A*, cached ``pull_centers``)
is held against the original implementation on the same inputs and must
match *exactly* — same arrays, same tie-breaking, same metrics.
"""

import numpy as np
import pytest

from repro.benchgen import BenchmarkSpec, make_benchmark
from repro.baselines.random_place import random_placement
from repro.db import Design, Net, Node, Pin
from repro.geometry import Orientation, Rect
from repro.route import GlobalRouter, GridGraph, RoutingSpec
from repro.route.maze import maze_route, maze_route_reference
from repro.route.pattern import prefix_costs
from repro.route.steiner import (
    clear_decompose_cache,
    decompose_all,
    decompose_cache_size,
    decompose_net,
)


def small_routed_design(seed=3, cells=260):
    spec = BenchmarkSpec(
        name=f"eq{seed}", num_cells=cells, num_macros=2, seed=seed
    )
    design = make_benchmark(spec)
    random_placement(design, seed=seed)
    return design


def reference_segments(arrays, tix, tiy):
    seg = []
    ptr = arrays.net_ptr
    for n in range(arrays.num_nets):
        a, b = ptr[n], ptr[n + 1]
        if b - a < 2:
            continue
        seg.extend(decompose_net(tix[a:b], tiy[a:b]))
    return np.asarray(seg, dtype=np.int64).reshape(-1, 4)


class TestDecomposeAll:
    @pytest.mark.parametrize("seed", [1, 2, 5])
    def test_matches_per_net_reference_exactly(self, seed):
        design = small_routed_design(seed=seed)
        arrays = design.pin_arrays()
        cx, cy = design.pull_centers()
        grid = design.routing.grid
        px, py = arrays.pin_positions(cx, cy)
        tix, tiy = grid.index_of(px, py)
        ref = reference_segments(arrays, tix, tiy)
        clear_decompose_cache()
        i0, j0, i1, j1, stats = decompose_all(tix, tiy, arrays.net_ptr)
        got = np.stack([i0, j0, i1, j1], axis=1)
        np.testing.assert_array_equal(got, ref)
        assert stats["deg2"] + stats["deg3"] + stats["mst_misses"] > 0

    def test_mst_memo_hits_on_repeat(self):
        design = small_routed_design(seed=9)
        arrays = design.pin_arrays()
        cx, cy = design.pull_centers()
        grid = design.routing.grid
        px, py = arrays.pin_positions(cx, cy)
        tix, tiy = grid.index_of(px, py)
        clear_decompose_cache()
        *_, first = decompose_all(tix, tiy, arrays.net_ptr)
        assert decompose_cache_size() == first["mst_misses"]
        *_, second = decompose_all(tix, tiy, arrays.net_ptr)
        assert second["mst_misses"] == 0
        assert second["mst_hits"] == first["mst_misses"]

    def test_empty_case_returns_independent_arrays(self):
        # Regression: the empty case must not hand out one aliased array
        # four times — callers append to / reuse them independently.
        for router_arrays in (
            decompose_all(
                np.zeros(0, np.int64), np.zeros(0, np.int64), np.zeros(1, np.int64)
            )[:4],
        ):
            i0, j0, i1, j1 = router_arrays
            assert all(len(a) == 0 for a in (i0, j0, i1, j1))
            ids = {id(a) for a in (i0, j0, i1, j1)}
            assert len(ids) == 4

    def test_reference_empty_case_independent(self):
        d = Design("empty", core=Rect(0, 0, 8, 8))
        n = d.add_node(Node("a", 1, 1))
        net = Net("n0", pins=[Pin(node=n.index)])
        d.add_net(net)
        d.routing = RoutingSpec.uniform(d.core, 4, 4)
        router = GlobalRouter(d.routing, reference=True)
        i0, j0, i1, j1 = router.segments_for(d.pin_arrays(), *d.pull_centers())
        assert len({id(a) for a in (i0, j0, i1, j1)}) == 4


class TestMazeEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_grids(self, seed):
        rng = np.random.default_rng(seed)
        nx, ny = int(rng.integers(6, 18)), int(rng.integers(6, 18))
        cost_e = 1.0 + rng.random((nx - 1, ny)) * 4.0
        cost_n = 1.0 + rng.random((nx, ny - 1)) * 4.0
        for _ in range(25):
            s = (int(rng.integers(nx)), int(rng.integers(ny)))
            g = (int(rng.integers(nx)), int(rng.integers(ny)))
            if rng.random() < 0.5:
                lo_i, hi_i = sorted((s[0], g[0]))
                lo_j, hi_j = sorted((s[1], g[1]))
                window = (
                    max(0, lo_i - 2),
                    max(0, lo_j - 2),
                    min(nx - 1, hi_i + 2),
                    min(ny - 1, hi_j + 2),
                )
            else:
                window = None
            c_ref, r_ref = maze_route_reference(cost_e, cost_n, s, g, window)
            c_opt, r_opt = maze_route(cost_e, cost_n, s, g, window)
            assert c_opt == c_ref
            assert r_opt == r_ref

    def test_blocked_window_unreachable(self):
        cost_e = np.full((3, 4), 1.0)
        cost_n = np.full((4, 3), 1.0)
        cost_e[:, :] = np.inf
        cost_n[:, :] = np.inf
        c_ref, r_ref = maze_route_reference(cost_e, cost_n, (0, 0), (3, 2))
        c_opt, r_opt = maze_route(cost_e, cost_n, (0, 0), (3, 2))
        assert np.isinf(c_ref) == np.isinf(c_opt)
        # Both still find a path (inf cost) or both fail identically.
        assert (r_ref is None) == (r_opt is None)


class TestBookkeepingEquivalence:
    def _routes(self, seed=4):
        rng = np.random.default_rng(seed)
        spec = RoutingSpec.uniform(Rect(0, 0, 32, 32), 12, 12, hcap=2, vcap=2)
        routes = []
        for _ in range(60):
            runs = []
            for _ in range(int(rng.integers(0, 4))):
                if rng.random() < 0.5:
                    j = int(rng.integers(12))
                    a, b = sorted(rng.integers(0, 12, size=2).tolist())
                    if b > a:
                        runs.append(("H", j, a, b))
                else:
                    i = int(rng.integers(12))
                    a, b = sorted(rng.integers(0, 12, size=2).tolist())
                    if b > a:
                        runs.append(("V", i, a, b))
            routes.append(runs)
        return spec, routes

    def test_commit_all_matches_reference(self):
        spec, routes = self._routes()
        g1, g2 = GridGraph(spec), GridGraph(spec)
        GlobalRouter._commit_all(g1, routes)
        GlobalRouter._commit_all_reference(g2, routes)
        np.testing.assert_array_equal(g1.use_e, g2.use_e)
        np.testing.assert_array_equal(g1.use_n, g2.use_n)

    def test_offender_scan_matches_reference(self):
        spec, routes = self._routes(seed=11)
        graph = GridGraph(spec)
        GlobalRouter._commit_all(graph, routes)
        router_opt = GlobalRouter(spec)
        router_ref = GlobalRouter(spec, reference=True)
        opt = router_opt._offending_segments(graph, routes)
        ref = router_ref._offending_segments(graph, routes)
        assert sorted(np.asarray(opt).tolist()) == sorted(ref)

    def test_refresh_cost_lines_matches_full_rebuild(self):
        spec, routes = self._routes(seed=7)
        graph = GridGraph(spec)
        GlobalRouter._commit_all(graph, routes)
        graph.bump_history()
        cost_e, cost_n = graph.cost_arrays()
        pe, pn = prefix_costs(cost_e, cost_n)
        # Mutate usage on a few lines, then refresh only those.
        graph.add_horizontal_run(3, 1, 9)
        graph.add_vertical_run(5, 0, 7)
        graph.add_horizontal_run(8, 2, 4, -1.0)
        graph.refresh_cost_lines(cost_e, cost_n, pe, pn, {3, 8}, {5})
        full_e, full_n = graph.cost_arrays()
        fpe, fpn = prefix_costs(full_e, full_n)
        np.testing.assert_array_equal(cost_e, full_e)
        np.testing.assert_array_equal(cost_n, full_n)
        np.testing.assert_array_equal(pe, fpe)
        np.testing.assert_array_equal(pn, fpn)


class TestFullRouteEquivalence:
    @pytest.mark.parametrize("seed", [2, 8])
    def test_reference_and_optimized_identical(self, seed):
        design = small_routed_design(seed=seed, cells=300)
        clear_decompose_cache()
        res_opt = GlobalRouter(design.routing).route(design)
        res_ref = GlobalRouter(design.routing, reference=True).route(design)
        np.testing.assert_array_equal(res_opt.graph.use_e, res_ref.graph.use_e)
        np.testing.assert_array_equal(res_opt.graph.use_n, res_ref.graph.use_n)
        assert res_opt.metrics.rc == res_ref.metrics.rc
        assert res_opt.metrics.total_overflow == res_ref.metrics.total_overflow
        assert res_opt.metrics.peak_congestion == res_ref.metrics.peak_congestion
        assert res_opt.metrics.vias == res_ref.metrics.vias
        assert res_opt.num_segments == res_ref.num_segments
        assert res_opt.overflow_per_round == res_ref.overflow_per_round


class TestCentersCache:
    def _design(self):
        d = Design("cc", core=Rect(0, 0, 20, 20))
        a = d.add_node(Node("a", 2, 2, x=1, y=1))
        b = d.add_node(Node("b", 2, 4, x=5, y=5))
        return d, a, b

    def test_returns_copies(self):
        d, a, _ = self._design()
        cx, cy = d.pull_centers()
        cx[0] = 123.0
        cx2, _ = d.pull_centers()
        assert cx2[0] == a.cx != 123.0

    def test_direct_attribute_write_invalidates(self):
        d, a, _ = self._design()
        d.pull_centers()
        a.x = 10.0
        assert d.pull_centers()[0][0] == a.cx == 11.0

    def test_move_center_to_invalidates(self):
        d, a, _ = self._design()
        d.pull_centers()
        a.move_center_to(7.0, 8.0)
        cx, cy = d.pull_centers()
        assert (cx[0], cy[0]) == (7.0, 8.0)

    def test_push_centers_invalidates(self):
        d, _, _ = self._design()
        d.pull_centers()
        d.push_centers(np.array([3.0, 9.0]), np.array([3.0, 9.0]))
        np.testing.assert_allclose(d.pull_centers()[0], [3.0, 9.0])

    def test_orientation_invalidates_centers_and_pins(self):
        d, _, b = self._design()
        d.add_net(Net("n", pins=[Pin(node=b.index, dx=1.0, dy=2.0)]))
        d.pull_centers()
        arrays = d.pin_arrays()
        d.set_orientation(b, Orientation.W)
        assert d.pin_arrays() is not arrays  # pin cache rebuilt
        cx, cy = d.pull_centers()
        assert (cx[1], cy[1]) == (b.cx, b.cy)

    def test_restore_placement_invalidates(self):
        d, a, _ = self._design()
        snap = d.clone_placement()
        a.move_center_to(15.0, 15.0)
        d.pull_centers()
        d.restore_placement(snap)
        assert d.pull_centers()[0][0] == a.cx == 2.0

    def test_mark_positions_dirty(self):
        d, _, _ = self._design()
        d.pull_centers()
        v = d._positions_version
        d.mark_positions_dirty()
        assert d._positions_version == v + 1


class TestKnobPlumbing:
    def test_flow_config_fields_reach_router(self):
        from repro.flow import FlowConfig

        cfg = FlowConfig()
        assert cfg.route_max_maze_nets == 1500
        assert cfg.route_cost_refresh == 1

    def test_cli_flags_parse_and_apply(self):
        from repro.cli import _apply_route_knobs, build_parser
        from repro.flow import FlowConfig

        parser = build_parser()
        args = parser.parse_args(
            [
                "place", "--aux", "x.aux",
                "--route-sweeps", "1",
                "--maze-rounds", "5",
                "--max-maze-nets", "42",
                "--cost-refresh", "9",
            ]
        )
        cfg = FlowConfig()
        _apply_route_knobs(cfg, args)
        assert cfg.route_sweeps == 1
        assert cfg.route_maze_rounds == 5
        assert cfg.route_max_maze_nets == 42
        assert cfg.route_cost_refresh == 9

    def test_route_subcommand_has_knobs(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["route", "--aux", "x.aux", "--max-maze-nets", "10"]
        )
        assert args.max_maze_nets == 10
        assert args.route_sweeps is None
