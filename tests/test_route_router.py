"""Tests for the full global router."""

import numpy as np
import pytest

from repro.db import Design, Net, Node, Pin
from repro.geometry import Rect
from repro.grids import BinGrid
from repro.route import GlobalRouter, GridGraph, RoutingSpec, route_design


def design_with_nets(net_specs, core=16.0, cap=4.0, tiles=8):
    """net_specs: list of lists of (x, y) pin positions."""
    d = Design("t", core=Rect(0, 0, core, core))
    idx = 0
    for pins in net_specs:
        members = []
        for (x, y) in pins:
            n = d.add_node(Node(f"c{idx}", 0.5, 0.5))
            n.move_center_to(x, y)
            members.append(n.index)
            idx += 1
        d.add_net(Net(f"n{len(d.nets)}", pins=[Pin(node=m) for m in members]))
    d.routing = RoutingSpec.uniform(d.core, tiles, tiles, hcap=cap, vcap=cap)
    return d


class TestGridGraph:
    def test_capacities_from_spec(self):
        spec = RoutingSpec.uniform(Rect(0, 0, 8, 8), 4, 4, hcap=3, vcap=5)
        g = GridGraph(spec)
        assert g.cap_e.shape == (3, 4)
        assert g.cap_n.shape == (4, 3)
        assert (g.cap_e == 3).all() and (g.cap_n == 5).all()

    def test_usage_runs(self):
        g = GridGraph(RoutingSpec.uniform(Rect(0, 0, 8, 8), 4, 4))
        g.add_horizontal_run(1, 0, 3)
        assert g.use_e[:, 1].tolist() == [1, 1, 1]
        g.add_vertical_run(2, 1, 2)
        assert g.use_n[2, 1] == 1

    def test_overflow_math(self):
        g = GridGraph(RoutingSpec.uniform(Rect(0, 0, 8, 8), 4, 4, hcap=1, vcap=1))
        for _ in range(3):
            g.add_horizontal_run(0, 0, 1)
        assert g.total_overflow() == pytest.approx(2.0)
        assert g.max_overflow() == pytest.approx(2.0)

    def test_tile_congestion_shape(self):
        g = GridGraph(RoutingSpec.uniform(Rect(0, 0, 8, 8), 4, 4))
        g.add_horizontal_run(0, 0, 3)
        tc = g.tile_congestion()
        assert tc.shape == (4, 4)
        assert tc.max() > 0

    def test_history_bumps_only_overflowed(self):
        g = GridGraph(RoutingSpec.uniform(Rect(0, 0, 8, 8), 4, 4, hcap=1, vcap=1))
        g.add_horizontal_run(0, 0, 1)
        g.add_horizontal_run(0, 0, 1)  # now over capacity 1
        g.bump_history()
        assert g.history_e[0, 0] > 0
        assert g.history_e[1, 0] == 0

    def test_block_rect_reduces_capacity(self):
        spec = RoutingSpec.uniform(Rect(0, 0, 8, 8), 4, 4, hcap=10, vcap=10)
        spec.block_rect(Rect(0, 0, 4, 4), keep_fraction=0.5)
        assert spec.hcap[0, 0] == pytest.approx(5.0)
        assert spec.hcap[3, 3] == pytest.approx(10.0)

    def test_block_rect_validates(self):
        spec = RoutingSpec.uniform(Rect(0, 0, 8, 8), 4, 4)
        with pytest.raises(ValueError):
            spec.block_rect(Rect(0, 0, 1, 1), keep_fraction=1.5)


class TestRouter:
    def test_routes_simple_net(self):
        d = design_with_nets([[(1, 1), (13, 13)]])
        rr = GlobalRouter(d.routing).route(d)
        assert rr.num_segments == 1
        assert rr.graph.wirelength() >= 12  # at least manhattan tile distance
        assert rr.metrics.total_overflow == 0

    def test_empty_design(self):
        d = design_with_nets([])
        rr = GlobalRouter(d.routing).route(d)
        assert rr.num_segments == 0
        assert rr.metrics.rc == 0.0

    def test_single_tile_net_routes_free(self):
        d = design_with_nets([[(1.0, 1.0), (1.2, 1.2)]])
        rr = GlobalRouter(d.routing).route(d)
        assert rr.num_segments == 0
        assert rr.graph.wirelength() == 0

    def test_usage_matches_wirelength(self):
        d = design_with_nets([[(1, 1), (9, 1)], [(1, 5), (1, 13)]])
        rr = GlobalRouter(d.routing).route(d)
        assert rr.graph.wirelength() == pytest.approx(
            rr.graph.use_e.sum() + rr.graph.use_n.sum()
        )

    def test_congestion_spreads_load(self):
        """Many parallel nets across a cut should use several rows."""
        nets = [[(1, 7.5), (15, 7.5)] for _ in range(12)]
        d = design_with_nets(nets, cap=3.0)
        rr = GlobalRouter(d.routing, sweeps=3).route(d)
        rows_used = (rr.graph.use_e.sum(axis=0) > 0).sum()
        assert rows_used >= 3  # not all piled in one row

    def test_maze_reduces_overflow(self):
        nets = [[(1, 7.5), (15, 7.5)] for _ in range(12)]
        d = design_with_nets(nets, cap=2.0)
        r0 = GlobalRouter(d.routing, sweeps=1, z_refine=False, maze_rounds=0).route(d)
        r1 = GlobalRouter(d.routing, sweeps=1, maze_rounds=4).route(d)
        assert r1.metrics.total_overflow <= r0.metrics.total_overflow

    def test_route_design_helper(self):
        d = design_with_nets([[(1, 1), (9, 9)]])
        rr = route_design(d)
        assert rr.num_segments == 1

    def test_route_design_requires_spec(self):
        d = design_with_nets([[(1, 1), (9, 9)]])
        d.routing = None
        with pytest.raises(ValueError):
            route_design(d)

    def test_route_needs_input(self):
        spec = RoutingSpec.uniform(Rect(0, 0, 8, 8), 4, 4)
        with pytest.raises(ValueError):
            GlobalRouter(spec).route()

    def test_congestion_map_shape(self):
        d = design_with_nets([[(1, 1), (13, 13)]])
        rr = GlobalRouter(d.routing).route(d)
        assert rr.congestion_map().shape == (8, 8)

    def test_deterministic(self):
        d1 = design_with_nets([[(1, 1), (13, 13)], [(2, 9), (14, 3)]])
        d2 = design_with_nets([[(1, 1), (13, 13)], [(2, 9), (14, 3)]])
        r1 = GlobalRouter(d1.routing).route(d1)
        r2 = GlobalRouter(d2.routing).route(d2)
        assert np.array_equal(r1.graph.use_e, r2.graph.use_e)
        assert np.array_equal(r1.graph.use_n, r2.graph.use_n)
