"""Tests for RUDY and pin-density congestion estimation."""

import numpy as np
import pytest

from repro.db import Design, Net, Node, Pin
from repro.geometry import Rect
from repro.grids import BinGrid
from repro.route import pin_density_map, rudy_map
from repro.route.rudy import rudy_congestion_metrics


def two_pin_design(p0, p1, core=16.0):
    d = Design("t", core=Rect(0, 0, core, core))
    a = d.add_node(Node("a", 0.5, 0.5))
    a.move_center_to(*p0)
    b = d.add_node(Node("b", 0.5, 0.5))
    b.move_center_to(*p1)
    d.add_net(Net("n", pins=[Pin(node=0), Pin(node=1)]))
    return d


class TestRudy:
    def test_total_demand_is_hpwl(self):
        d = two_pin_design((2, 2), (10, 6))
        grid = BinGrid(d.core, 8, 8)
        arrays = d.pin_arrays()
        cx, cy = d.pull_centers()
        m = rudy_map(arrays, cx, cy, grid)
        total = m.sum() * grid.bin_area
        assert total == pytest.approx(8 + 4, rel=1e-6)

    def test_demand_confined_to_bbox(self):
        d = two_pin_design((2, 2), (6, 6))
        grid = BinGrid(d.core, 8, 8)
        arrays = d.pin_arrays()
        cx, cy = d.pull_centers()
        m = rudy_map(arrays, cx, cy, grid)
        assert m[7, 7] == 0.0
        assert m[1, 1] > 0

    def test_degenerate_net_padded(self):
        """A zero-height net still deposits its demand."""
        d = two_pin_design((2, 4), (10, 4))
        grid = BinGrid(d.core, 8, 8)
        arrays = d.pin_arrays()
        cx, cy = d.pull_centers()
        m = rudy_map(arrays, cx, cy, grid)
        assert m.sum() * grid.bin_area == pytest.approx(8.0 + grid.bin_h, rel=1e-6)

    def test_wire_width_scales(self):
        d = two_pin_design((2, 2), (10, 6))
        grid = BinGrid(d.core, 8, 8)
        arrays = d.pin_arrays()
        cx, cy = d.pull_centers()
        m1 = rudy_map(arrays, cx, cy, grid, wire_width=1.0)
        m2 = rudy_map(arrays, cx, cy, grid, wire_width=2.0)
        assert np.allclose(m2, 2 * m1)

    def test_single_pin_nets_skipped(self):
        d = Design("t", core=Rect(0, 0, 16, 16))
        d.add_node(Node("a", 1, 1, x=3, y=3))
        d.add_net(Net("n", pins=[Pin(node=0)]))
        grid = BinGrid(d.core, 8, 8)
        m = rudy_map(d.pin_arrays(), *d.pull_centers(), grid)
        assert m.sum() == 0.0


class TestPinDensity:
    def test_counts_pins(self):
        d = two_pin_design((2, 2), (10, 6))
        grid = BinGrid(d.core, 8, 8)
        m = pin_density_map(d.pin_arrays(), *d.pull_centers(), grid)
        assert m.sum() == 2.0
        assert m[1, 1] == 1.0
        assert m[5, 3] == 1.0

    def test_zero_and_one_pin_nets(self):
        """Empty and single-pin nets contribute their pins, no demand."""
        d = Design("t", core=Rect(0, 0, 16, 16))
        d.add_node(Node("a", 1, 1, x=3, y=3))
        d.add_net(Net("empty", pins=[]))
        d.add_net(Net("single", pins=[Pin(node=0)]))
        grid = BinGrid(d.core, 8, 8)
        m = pin_density_map(d.pin_arrays(), *d.pull_centers(), grid)
        assert m.sum() == 1.0  # the one real pin
        assert rudy_map(d.pin_arrays(), *d.pull_centers(), grid).sum() == 0.0

    def test_out_buffer_bit_identical(self):
        d = two_pin_design((2, 2), (10, 6))
        grid = BinGrid(d.core, 8, 8)
        arrays = d.pin_arrays()
        cx, cy = d.pull_centers()
        fresh = pin_density_map(arrays, cx, cy, grid)
        buf = grid.zeros()
        buf.fill(123.0)  # stale contents must not leak through
        reused = pin_density_map(arrays, cx, cy, grid, out=buf)
        assert reused is buf
        assert np.array_equal(fresh, reused)

    def test_out_shape_mismatch_raises(self):
        d = two_pin_design((2, 2), (10, 6))
        grid = BinGrid(d.core, 8, 8)
        with pytest.raises(ValueError, match="shape"):
            pin_density_map(
                d.pin_arrays(), *d.pull_centers(), grid, out=np.zeros((4, 4))
            )


class TestRudyBuffers:
    def test_out_buffer_bit_identical(self):
        d = two_pin_design((2, 2), (10, 6))
        grid = BinGrid(d.core, 8, 8)
        arrays = d.pin_arrays()
        cx, cy = d.pull_centers()
        fresh = rudy_map(arrays, cx, cy, grid)
        buf = grid.zeros()
        buf.fill(-7.0)
        reused = rudy_map(arrays, cx, cy, grid, out=buf)
        assert reused is buf
        assert np.array_equal(fresh, reused)

    def test_out_matches_reference_path(self):
        d = two_pin_design((2, 2), (11, 7))
        grid = BinGrid(d.core, 8, 8)
        arrays = d.pin_arrays()
        cx, cy = d.pull_centers()
        golden = rudy_map(arrays, cx, cy, grid, reference=True)
        buf = grid.zeros()
        assert np.array_equal(golden, rudy_map(arrays, cx, cy, grid, out=buf))


class TestRudyMetricsEdgeCases:
    def _with_routing(self, design, cap=10.0):
        from repro.route import RoutingSpec

        design.routing = RoutingSpec.uniform(design.core, 8, 8, cap, cap)
        return design

    def test_no_nets_no_offenders(self):
        """A design with no (real) nets yields clean all-zero metrics."""
        d = Design("t", core=Rect(0, 0, 16, 16))
        d.add_node(Node("a", 1, 1, x=3, y=3))
        d.add_net(Net("empty", pins=[]))
        d.add_net(Net("single", pins=[Pin(node=0)]))
        m = rudy_congestion_metrics(self._with_routing(d))
        assert m.total_overflow == 0.0
        assert m.max_overflow == 0.0
        assert m.routed_wirelength == 0.0
        assert np.isfinite(m.peak_congestion)

    def test_no_routing_spec_raises(self):
        d = two_pin_design((2, 2), (10, 6))
        with pytest.raises(ValueError, match="routing spec"):
            rudy_congestion_metrics(d)

    def test_starved_supply_overflows(self):
        """Near-zero supply turns the whole demand into overflow."""
        d = self._with_routing(two_pin_design((2, 2), (10, 6)), cap=1e-9)
        m = rudy_congestion_metrics(d)
        assert m.total_overflow == pytest.approx(m.routed_wirelength, rel=1e-6)

    def test_ranking_agrees_with_router(self):
        """RUDY must rank the same tiles hot as a real lookahead route."""
        from repro.benchgen import BenchmarkSpec, make_benchmark
        from repro.gp.initial import initial_placement
        from repro.route.router import GlobalRouter

        spec = BenchmarkSpec(
            name="rank", num_cells=500, num_macros=2, num_fixed_macros=1,
            macro_area_fraction=0.2, utilization=0.65, cap_factor=4.5,
            seed=5,
        )
        design = make_benchmark(spec)
        initial_placement(design, seed=3)
        grid = design.routing.grid
        rudy = rudy_map(design.pin_arrays(), *design.pull_centers(), grid)
        router = GlobalRouter(
            design.routing, sweeps=1, z_refine=False, maze_rounds=0
        )
        routed = router.route(design).congestion_map()
        k = max(rudy.size // 5, 1)  # hottest quintile of tiles
        top_rudy = set(np.argsort(rudy.ravel())[-k:].tolist())
        top_routed = set(np.argsort(routed.ravel())[-k:].tolist())
        overlap = len(top_rudy & top_routed) / k
        assert overlap >= 0.5, f"hot-tile overlap {overlap:.2f}"
        corr = float(np.corrcoef(rudy.ravel(), routed.ravel())[0, 1])
        assert corr >= 0.7, f"tile correlation {corr:.2f}"
