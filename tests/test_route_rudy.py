"""Tests for RUDY and pin-density congestion estimation."""

import numpy as np
import pytest

from repro.db import Design, Net, Node, Pin
from repro.geometry import Rect
from repro.grids import BinGrid
from repro.route import pin_density_map, rudy_map


def two_pin_design(p0, p1, core=16.0):
    d = Design("t", core=Rect(0, 0, core, core))
    a = d.add_node(Node("a", 0.5, 0.5))
    a.move_center_to(*p0)
    b = d.add_node(Node("b", 0.5, 0.5))
    b.move_center_to(*p1)
    d.add_net(Net("n", pins=[Pin(node=0), Pin(node=1)]))
    return d


class TestRudy:
    def test_total_demand_is_hpwl(self):
        d = two_pin_design((2, 2), (10, 6))
        grid = BinGrid(d.core, 8, 8)
        arrays = d.pin_arrays()
        cx, cy = d.pull_centers()
        m = rudy_map(arrays, cx, cy, grid)
        total = m.sum() * grid.bin_area
        assert total == pytest.approx(8 + 4, rel=1e-6)

    def test_demand_confined_to_bbox(self):
        d = two_pin_design((2, 2), (6, 6))
        grid = BinGrid(d.core, 8, 8)
        arrays = d.pin_arrays()
        cx, cy = d.pull_centers()
        m = rudy_map(arrays, cx, cy, grid)
        assert m[7, 7] == 0.0
        assert m[1, 1] > 0

    def test_degenerate_net_padded(self):
        """A zero-height net still deposits its demand."""
        d = two_pin_design((2, 4), (10, 4))
        grid = BinGrid(d.core, 8, 8)
        arrays = d.pin_arrays()
        cx, cy = d.pull_centers()
        m = rudy_map(arrays, cx, cy, grid)
        assert m.sum() * grid.bin_area == pytest.approx(8.0 + grid.bin_h, rel=1e-6)

    def test_wire_width_scales(self):
        d = two_pin_design((2, 2), (10, 6))
        grid = BinGrid(d.core, 8, 8)
        arrays = d.pin_arrays()
        cx, cy = d.pull_centers()
        m1 = rudy_map(arrays, cx, cy, grid, wire_width=1.0)
        m2 = rudy_map(arrays, cx, cy, grid, wire_width=2.0)
        assert np.allclose(m2, 2 * m1)

    def test_single_pin_nets_skipped(self):
        d = Design("t", core=Rect(0, 0, 16, 16))
        d.add_node(Node("a", 1, 1, x=3, y=3))
        d.add_net(Net("n", pins=[Pin(node=0)]))
        grid = BinGrid(d.core, 8, 8)
        m = rudy_map(d.pin_arrays(), *d.pull_centers(), grid)
        assert m.sum() == 0.0


class TestPinDensity:
    def test_counts_pins(self):
        d = two_pin_design((2, 2), (10, 6))
        grid = BinGrid(d.core, 8, 8)
        m = pin_density_map(d.pin_arrays(), *d.pull_centers(), grid)
        assert m.sum() == 2.0
        assert m[1, 1] == 1.0
        assert m[5, 3] == 1.0
