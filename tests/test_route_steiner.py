"""Tests for net decomposition (MST / Steiner)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.route import decompose_net, manhattan_mst


def mst_length(xs, ys):
    return sum(
        abs(xs[a] - xs[b]) + abs(ys[a] - ys[b]) for a, b in manhattan_mst(xs, ys)
    )


class TestMST:
    def test_two_points_single_edge(self):
        edges = manhattan_mst(np.array([0.0, 3.0]), np.array([0.0, 4.0]))
        assert edges == [(0, 1)]

    def test_empty_and_single(self):
        assert manhattan_mst(np.array([]), np.array([])) == []
        assert manhattan_mst(np.array([1.0]), np.array([1.0])) == []

    def test_collinear_chain(self):
        xs = np.array([0.0, 10.0, 5.0, 2.0])
        ys = np.zeros(4)
        assert mst_length(xs, ys) == pytest.approx(10.0)

    def test_spanning(self):
        rng = np.random.default_rng(0)
        xs = rng.uniform(0, 10, 12)
        ys = rng.uniform(0, 10, 12)
        edges = manhattan_mst(xs, ys)
        assert len(edges) == 11
        # connected: union-find check
        parent = list(range(12))

        def find(a):
            while parent[a] != a:
                a = parent[a]
            return a

        for a, b in edges:
            parent[find(a)] = find(b)
        assert len({find(i) for i in range(12)}) == 1

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 30)),
            min_size=2,
            max_size=10,
            unique=True,
        )
    )
    def test_mst_no_longer_than_star(self, pts):
        """MST length must not exceed the star topology from any hub."""
        xs = np.array([p[0] for p in pts], dtype=float)
        ys = np.array([p[1] for p in pts], dtype=float)
        mst = mst_length(xs, ys)
        for hub in range(len(pts)):
            star = sum(
                abs(xs[hub] - xs[i]) + abs(ys[hub] - ys[i]) for i in range(len(pts))
            )
            assert mst <= star + 1e-9


class TestDecompose:
    def test_single_tile_empty(self):
        assert decompose_net(np.array([3, 3]), np.array([4, 4])) == []

    def test_two_tiles(self):
        segs = decompose_net(np.array([0, 5]), np.array([0, 2]))
        assert segs == [(0, 0, 5, 2)]

    def test_duplicates_removed(self):
        segs = decompose_net(np.array([0, 0, 5]), np.array([0, 0, 2]))
        assert len(segs) == 1

    def test_three_pins_median_steiner(self):
        # L-shaped pins: steiner point at the median (5, 0)
        segs = decompose_net(np.array([0, 5, 5]), np.array([0, 0, 7]))
        assert len(segs) == 2
        for i0, j0, i1, j1 in segs:
            assert (i0, j0) == (5, 0)

    def test_three_pins_no_self_edge(self):
        # Steiner point coincides with one pin
        segs = decompose_net(np.array([0, 5, 9]), np.array([0, 0, 0]))
        assert all((a, b) != (c, d) for a, b, c, d in segs)
        assert len(segs) == 2

    def test_large_net_tree_size(self):
        rng = np.random.default_rng(1)
        k = 9
        segs = decompose_net(rng.integers(0, 20, k), rng.integers(0, 20, k))
        # MST over <=9 unique points: <= 8 edges, >= 1
        assert 1 <= len(segs) <= 8

    def test_covers_all_tiles(self):
        """Every distinct pin tile must appear in some segment."""
        tx = np.array([1, 4, 9, 9])
        ty = np.array([1, 8, 2, 8])
        segs = decompose_net(tx, ty)
        touched = {(a, b) for a, b, _, _ in segs} | {(c, d) for _, _, c, d in segs}
        for t in zip(tx, ty):
            assert tuple(t) in touched
