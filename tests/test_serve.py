"""Tests for the placement-as-a-service job engine (``repro.serve``).

Covers the store's transactional semantics (the claim, attempt-scoped
write guards, bounded requeues), the job-record schema, the per-job
worker pinning that keeps concurrent jobs from oversubscribing cores,
and the supervisor's crash/cancel reliability loop end to end —
including the two failure drills the engine exists for: a worker
killed mid-flow whose job resumes bit-identically from its checkpoint,
and a cancel during routing that leaves no shared-memory segment
behind.
"""

from __future__ import annotations

import glob
import json
import os
import signal
import time

import pytest

from repro.benchgen import BenchmarkSpec, make_benchmark
from repro.parallel import resolve_workers
from repro.serve import (
    JobServer,
    JobStore,
    JobStoreError,
    ServeSettings,
    WorkerSupervisor,
)
from repro.serve.schema import (
    JOB_SCHEMA_VERSION,
    SchemaError,
    build_job_schema,
    new_job_record,
    validate_job_record,
)
from repro.serve.worker import build_flow_config, flow_result_summary

SPEC = {"name": "servetest", "num_cells": 40, "seed": 11}


def fast_settings(**overrides) -> ServeSettings:
    base = dict(
        workers=1,
        poll_interval=0.02,
        heartbeat_interval=0.1,
        monitor_interval=0.1,
        stale_timeout=30.0,
        cancel_grace=2.0,
        default_max_retries=2,
    )
    base.update(overrides)
    return ServeSettings(**base)


def wait_for(predicate, *, timeout: float = 60.0, poll: float = 0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(poll)
    raise AssertionError(f"timed out after {timeout}s waiting for {predicate}")


class TestJobSchema:
    def test_new_record_validates(self):
        record = new_job_record({"spec": SPEC})
        validate_job_record(record)
        assert record["state"] == "queued"
        assert record["attempts"] == 0
        assert record["schema"] == JOB_SCHEMA_VERSION

    def test_design_needs_exactly_one_source(self):
        with pytest.raises(SchemaError):
            new_job_record({})
        with pytest.raises(SchemaError):
            new_job_record({"spec": SPEC, "suite": "small"})

    def test_rejects_unknown_fields(self):
        record = new_job_record({"spec": SPEC})
        record["surprise"] = 1
        with pytest.raises(SchemaError, match="surprise"):
            validate_job_record(record)

    def test_rejects_bad_state(self):
        record = new_job_record({"spec": SPEC})
        record["state"] = "pondering"
        with pytest.raises(SchemaError, match="state"):
            validate_job_record(record)

    def test_committed_schema_matches_builder(self):
        path = os.path.join(
            os.path.dirname(__file__), os.pardir, "docs", "schemas",
            f"job-record-v{JOB_SCHEMA_VERSION}.schema.json",
        )
        with open(path, encoding="utf-8") as fh:
            assert json.load(fh) == build_job_schema()


class TestJobStore:
    def _store(self, tmp_path) -> JobStore:
        return JobStore(tmp_path / "serve")

    def test_claim_orders_by_priority_then_fifo(self, tmp_path):
        store = self._store(tmp_path)
        low = store.submit({"spec": SPEC}, priority=0)
        high = store.submit({"spec": SPEC}, priority=5)
        low2 = store.submit({"spec": SPEC}, priority=0)
        order = [store.claim(1)["job_id"] for _ in range(3)]
        assert order == [high["job_id"], low["job_id"], low2["job_id"]]
        assert store.claim(1) is None

    def test_claim_stamps_lease(self, tmp_path):
        store = self._store(tmp_path)
        store.submit({"spec": SPEC})
        record = store.claim(4242)
        assert record["state"] == "running"
        assert record["attempts"] == 1
        assert record["worker"] == 4242
        assert record["started"] is not None
        assert record["heartbeat"] is not None

    def test_heartbeat_statuses(self, tmp_path):
        store = self._store(tmp_path)
        job_id = store.submit({"spec": SPEC})["job_id"]
        store.claim(1)
        assert store.heartbeat(job_id, attempt=1, stage="flow/gp") == "ok"
        assert store.get(job_id)["stage"] == "flow/gp"
        # A stale attempt may not write anything.
        before = store.get(job_id)["heartbeat"]
        assert store.heartbeat(job_id, attempt=2, now=before + 99) == "superseded"
        assert store.get(job_id)["heartbeat"] == before
        store.request_cancel(job_id)
        assert store.heartbeat(job_id, attempt=1) == "cancel"

    def test_set_paths_guarded_by_attempt(self, tmp_path):
        store = self._store(tmp_path)
        job_id = store.submit({"spec": SPEC})["job_id"]
        store.claim(1)
        assert store.set_paths(job_id, attempt=2, job_dir="/stale") is False
        assert store.get(job_id)["job_dir"] is None
        assert store.set_paths(job_id, attempt=1, job_dir="/live") is True
        assert store.get(job_id)["job_dir"] == "/live"

    def test_zombie_attempt_cannot_finish(self, tmp_path):
        # The exact race behind a once-observed double-run: job requeued
        # and re-claimed while the first attempt's process is still
        # alive.  The stale attempt's terminal write must be refused.
        store = self._store(tmp_path)
        job_id = store.submit({"spec": SPEC})["job_id"]
        store.claim(111)
        store.requeue(job_id, "worker_lost", expect_worker=111)
        store.claim(222)  # attempt 2 owns the job now
        stale = store.finish(job_id, {"hpwl_final": 1.0}, attempt=1)
        assert stale["state"] == "running"
        assert stale.get("result") is None
        live = store.finish(job_id, {"hpwl_final": 2.0}, attempt=2)
        assert live["state"] == "done"
        assert live["result"]["hpwl_final"] == 2.0

    def test_requeue_guarded_by_observed_worker(self, tmp_path):
        # The supervisor's poll snapshot is stale by construction; a
        # requeue naming a pid that no longer owns the job is a no-op.
        store = self._store(tmp_path)
        job_id = store.submit({"spec": SPEC})["job_id"]
        store.claim(111)
        refused = store.requeue(job_id, "worker_lost", expect_worker=999)
        assert refused["state"] == "running"
        assert refused["requeues"] == []

    def test_requeue_bounded_by_max_retries(self, tmp_path):
        store = self._store(tmp_path)
        job_id = store.submit({"spec": SPEC}, max_retries=1)["job_id"]
        store.claim(1)
        assert store.requeue(job_id, "worker_lost")["state"] == "queued"
        store.claim(1)
        final = store.requeue(job_id, "worker_lost")
        assert final["state"] == "failed"
        assert "retries exhausted" in final["error"]
        assert [e["reason"] for e in final["requeues"]] == ["worker_lost"] * 2

    def test_requeue_refund_does_not_burn_attempt(self, tmp_path):
        store = self._store(tmp_path)
        job_id = store.submit({"spec": SPEC}, max_retries=0)["job_id"]
        store.claim(1)
        record = store.requeue(job_id, "shutdown", count_attempt=False)
        assert record["state"] == "queued"
        assert record["attempts"] == 0
        assert store.claim(1)["attempts"] == 1

    def test_first_terminal_state_wins(self, tmp_path):
        store = self._store(tmp_path)
        job_id = store.submit({"spec": SPEC})["job_id"]
        store.claim(1)
        store.finish(job_id, {"hpwl_final": 1.0}, attempt=1)
        after = store.fail(job_id, "too late")
        assert after["state"] == "done"
        assert after["error"] is None

    def test_cancel_queued_is_immediate(self, tmp_path):
        store = self._store(tmp_path)
        job_id = store.submit({"spec": SPEC})["job_id"]
        record = store.request_cancel(job_id)
        assert record["state"] == "cancelled"
        assert store.claim(1) is None

    def test_cancel_running_sets_flag(self, tmp_path):
        store = self._store(tmp_path)
        job_id = store.submit({"spec": SPEC})["job_id"]
        store.claim(1)
        record = store.request_cancel(job_id)
        assert record["state"] == "running"
        assert record["cancel_requested"] is True

    def test_get_by_unique_prefix(self, tmp_path):
        store = self._store(tmp_path)
        job_id = store.submit({"spec": SPEC})["job_id"]
        assert store.get(job_id[:12])["job_id"] == job_id
        with pytest.raises(JobStoreError, match="no job"):
            store.get("nope")

    def test_counts_and_idle(self, tmp_path):
        store = self._store(tmp_path)
        store.submit({"spec": SPEC})
        assert store.counts() == {"queued": 1}
        assert not store.idle()
        store.claim(1)
        job_id = store.list(state="running")[0]["job_id"]
        store.finish(job_id, {"hpwl_final": 0.0}, attempt=1)
        assert store.idle()

    def test_list_state_filter_and_pagination(self, tmp_path):
        store = self._store(tmp_path)
        ids = [store.submit({"spec": SPEC})["job_id"] for _ in range(5)]
        store.claim(1)
        store.finish(ids[0], {"hpwl_final": 0.0}, attempt=1)
        assert {r["job_id"] for r in store.list(state="queued")} == set(
            ids[1:]
        )
        assert [r["job_id"] for r in store.list(state="done")] == [ids[0]]
        # Newest first; limit/offset page through without overlap.
        everything = store.list()
        assert [r["job_id"] for r in everything] == list(reversed(ids))
        paged = store.list(limit=2) + store.list(limit=2, offset=2) \
            + store.list(limit=2, offset=4)
        assert [r["job_id"] for r in paged] == list(reversed(ids))

    def test_claim_order_stable_under_concurrent_submitters(self, tmp_path):
        import threading

        store = self._store(tmp_path)
        submitted: list[tuple[int, str]] = []
        lock = threading.Lock()

        def submitter(worker: int):
            # Each thread opens its own handle, like a real client
            # process would; priorities interleave across threads.
            own = JobStore(tmp_path / "serve")
            for i in range(8):
                priority = (worker + i) % 3
                job_id = own.submit(
                    {"spec": SPEC}, priority=priority
                )["job_id"]
                with lock:
                    submitted.append((priority, job_id))

        threads = [
            threading.Thread(target=submitter, args=(w,)) for w in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert store.counts() == {"queued": 32}
        # Draining the queue yields priorities in non-increasing order,
        # and within a priority class the submit order (FIFO) holds
        # per submitter.
        drained = []
        while True:
            record = store.claim(os.getpid())
            if record is None:
                break
            drained.append(record)
            store.finish(record["job_id"], {}, attempt=record["attempts"])
        assert len(drained) == 32
        priorities = [r["priority"] for r in drained]
        assert priorities == sorted(priorities, reverse=True)
        created_by_priority: dict[int, list[float]] = {}
        for record in drained:
            created_by_priority.setdefault(
                record["priority"], []
            ).append(record["created"])
        for stamps in created_by_priority.values():
            assert stamps == sorted(stamps)


class TestWorkerPinning:
    def test_resolve_workers_env_opt_out(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "8")
        assert resolve_workers(1) == 8
        assert resolve_workers(1, env=False) == 1

    def test_build_flow_config_pins_workers(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "16")
        cfg = build_flow_config({}, job_dir=str(tmp_path), default_workers=1)
        assert cfg.workers == 1
        assert cfg.workers_pinned is True
        assert cfg.checkpoint_dir == str(tmp_path / "checkpoint")

    def test_pin_propagates_to_stage_configs(self, tmp_path):
        from repro.flow import NTUplace4H

        cfg = build_flow_config(
            {"run_dp": False, "config": {"gp.max_outer_iterations": 2}},
            job_dir=str(tmp_path),
        )
        flow = NTUplace4H(cfg)
        flow.run(make_benchmark(BenchmarkSpec(**SPEC)), route=False)
        assert cfg.gp.workers_pinned is True
        assert cfg.legal.workers_pinned is True
        assert cfg.dp.workers_pinned is True

    def test_config_override_type_checked(self, tmp_path):
        with pytest.raises(ValueError, match="unknown flow-config"):
            build_flow_config(
                {"config": {"gp.not_a_knob": 1}}, job_dir=str(tmp_path)
            )
        cfg = build_flow_config(
            {"config": {"gp.max_outer_iterations": 7.0}},
            job_dir=str(tmp_path),
        )
        assert cfg.gp.max_outer_iterations == 7


def _shm_segments() -> set:
    return {
        os.path.basename(p) for p in glob.glob("/dev/shm/repro_*")
    }


class TestServeEngine:
    def test_job_runs_to_done(self, tmp_path):
        store = JobStore(tmp_path / "serve")
        record = store.submit(
            {"spec": SPEC},
            options={"route": False, "run_dp": False,
                     "config": {"gp.max_outer_iterations": 3}},
        )
        with WorkerSupervisor(tmp_path / "serve", fast_settings()):
            final = wait_for(
                lambda: (r := store.get(record["job_id"]))["state"] == "done"
                and r
            )
        assert final["attempts"] == 1
        assert final["result"]["hpwl_final"] > 0
        assert os.path.exists(final["trace_path"])
        assert final["trace_path"].endswith("trace-attempt1.jsonl")

    def test_crash_requeue_resumes_bit_identically(self, tmp_path):
        """A worker hard-killed at stage boundaries converges to the
        same result an uninterrupted run produces, resuming each next
        attempt from the per-stage checkpoint."""
        spec = {"name": "crashdrill", "num_cells": 120, "seed": 3}
        options = {
            "route": False,
            "config": {"gp.max_outer_iterations": 5},
            # Hard os._exit at the 2nd completed flow stage of every
            # attempt: each attempt checkpoints one stage further, so
            # the job converges within max_retries.
            "faults": "serve.worker_exit@2",
        }
        store = JobStore(tmp_path / "serve")
        record = store.submit({"spec": spec}, options=options, max_retries=3)
        with WorkerSupervisor(tmp_path / "serve", fast_settings()) as sup:
            final = wait_for(
                lambda: (r := store.get(record["job_id"]))["state"]
                in ("done", "failed") and r,
                timeout=180,
            )
            assert sup.respawns >= 1
        assert final["state"] == "done"
        assert final["attempts"] > 1
        reasons = {e["reason"] for e in final["requeues"]}
        assert reasons == {"worker_lost"}
        assert final["result"]["resumed_stages"]  # checkpoint was used

        # Uninterrupted reference with the identical per-job config.
        ref_cfg = build_flow_config(
            {k: v for k, v in options.items() if k != "faults"},
            job_dir=str(tmp_path / "ref"),
        )
        from repro.flow import NTUplace4H

        ref = NTUplace4H(ref_cfg).run(
            make_benchmark(BenchmarkSpec(**spec)), route=False
        )
        assert final["result"]["hpwl_final"] == ref.hpwl_final
        assert final["result"]["hpwl_gp"] == ref.hpwl_gp

    @pytest.mark.skipif(
        not os.path.isdir("/dev/shm"), reason="POSIX shared memory fs only"
    )
    def test_cancel_during_route_leaks_no_shared_memory(self, tmp_path):
        spec = {"name": "canceldrill", "num_cells": 900, "seed": 5}
        store = JobStore(tmp_path / "serve")
        before = _shm_segments()
        record = store.submit(
            {"spec": spec},
            options={"route": True, "run_dp": False, "workers": 2,
                     "config": {"gp.max_outer_iterations": 4}},
        )
        job_id = record["job_id"]
        with WorkerSupervisor(tmp_path / "serve", fast_settings()):
            wait_for(
                lambda: (store.get(job_id).get("stage") or "").startswith(
                    "flow/route"
                )
                or store.get(job_id)["state"] != "running"
                and store.get(job_id)["state"] != "queued",
                timeout=180,
            )
            assert store.get(job_id)["state"] == "running", (
                "job finished before the cancel could land in route"
            )
            store.request_cancel(job_id)
            final = wait_for(
                lambda: (r := store.get(job_id))["state"] == "cancelled"
                and r,
                timeout=60,
            )
        assert final["state"] == "cancelled"
        time.sleep(0.5)  # let worker finalizers settle
        leaked = _shm_segments() - before
        assert not leaked, f"orphaned shared-memory segments: {leaked}"

    def test_sigkilled_worker_job_resumes(self, tmp_path):
        """External SIGKILL (not a fault point): the supervisor notices
        the dead worker, requeues, and the job still completes with the
        uninterrupted run's result."""
        spec = {"name": "sigkill", "num_cells": 300, "seed": 9}
        store = JobStore(tmp_path / "serve")
        record = store.submit(
            {"spec": spec},
            options={"route": False,
                     "config": {"gp.max_outer_iterations": 8}},
            max_retries=2,
        )
        job_id = record["job_id"]
        with WorkerSupervisor(tmp_path / "serve", fast_settings()) as sup:
            running = wait_for(
                lambda: (r := store.get(job_id))["state"] == "running"
                and r.get("worker") and r,
                timeout=60,
            )
            os.kill(running["worker"], signal.SIGKILL)
            final = wait_for(
                lambda: (r := store.get(job_id))["state"]
                in ("done", "failed") and r,
                timeout=180,
            )
            assert sup.respawns >= 1
        assert final["state"] == "done"
        assert final["attempts"] >= 2
        assert any(
            e["reason"] == "worker_lost" for e in final["requeues"]
        )
        ref_cfg = build_flow_config(
            {"config": {"gp.max_outer_iterations": 8}},
            job_dir=str(tmp_path / "ref"),
        )
        from repro.flow import NTUplace4H

        ref = NTUplace4H(ref_cfg).run(
            make_benchmark(BenchmarkSpec(**spec)), route=False
        )
        assert final["result"]["hpwl_final"] == ref.hpwl_final

    def test_orphaned_jobs_requeued_on_startup(self, tmp_path):
        store = JobStore(tmp_path / "serve")
        job_id = store.submit({"spec": SPEC})["job_id"]
        store.claim(999999)  # a worker from a "previous server" run
        sup = WorkerSupervisor(
            tmp_path / "serve", fast_settings(workers=0)
        )
        sup.start()
        try:
            record = store.get(job_id)
            assert record["state"] == "queued"
            assert record["attempts"] == 0  # refunded
            assert record["requeues"][0]["reason"] == "orphaned"
        finally:
            sup.close()


class TestResultSummary:
    def test_summary_round_trips_through_record(self, tmp_path):
        cfg = build_flow_config(
            {"run_dp": False, "config": {"gp.max_outer_iterations": 2}},
            job_dir=str(tmp_path),
        )
        from repro.flow import NTUplace4H

        result = NTUplace4H(cfg).run(
            make_benchmark(BenchmarkSpec(**SPEC)), route=False
        )
        summary = flow_result_summary(result)
        store = JobStore(tmp_path / "serve")
        job_id = store.submit({"spec": SPEC})["job_id"]
        store.claim(1)
        record = store.finish(job_id, summary, attempt=1)
        validate_job_record(record)
        assert record["result"]["design"] == result.design_name
        assert record["result"]["legal"] == result.legal
