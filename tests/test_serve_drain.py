"""Graceful-drain and rolling-restart tests for the serve stack.

The drain contract (``docs/serving.md``): a draining engine stops
claiming queued work (the flag lives in the store, so every worker
process sees it), finishes or checkpoints what is in flight within the
deadline, and refuses new submits with 503 + ``Retry-After``; a fresh
engine on the same root clears the flag and resumes.  The
restart-under-load path — drain past its deadline, close, reopen —
must lose no job: in-flight work is requeued with the attempt
refunded and runs to completion on the next engine, with the journal
invariants intact.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.serve import (
    JobServer,
    JobStore,
    ServeAPIError,
    ServeClient,
    ServeSettings,
)
from repro.serve.journal import check_invariants

SPEC = {"name": "draintest", "num_cells": 40, "seed": 17}
DESIGN = {"spec": SPEC}
FAST_OPTIONS = {
    "route": False,
    "run_dp": False,
    "config": {"gp.max_outer_iterations": 3},
}


def make_server(tmp_path, **overrides) -> JobServer:
    base = dict(
        workers=1,
        poll_interval=0.02,
        heartbeat_interval=0.1,
        monitor_interval=0.1,
        stale_timeout=30.0,
    )
    base.update(overrides)
    return JobServer(tmp_path / "serve", settings=ServeSettings(**base))


def wait_for(predicate, *, timeout: float = 60.0, poll: float = 0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(poll)
    raise AssertionError(f"timed out after {timeout}s waiting for {predicate}")


class TestStoreDrainFlag:
    def test_draining_blocks_claims(self, tmp_path):
        store = JobStore(tmp_path / "serve")
        store.submit(DESIGN)
        store.set_draining(True)
        assert store.draining() is True
        assert store.claim(os.getpid()) is None
        store.set_draining(False)
        assert store.claim(os.getpid()) is not None

    def test_flag_visible_across_handles(self, tmp_path):
        # The flag lives in the database, not the process: a second
        # handle on the same root (another worker) sees it at once.
        store_a = JobStore(tmp_path / "serve")
        store_b = JobStore(tmp_path / "serve")
        store_a.set_draining(True)
        assert store_b.draining() is True


class TestGracefulDrain:
    def test_drain_finishes_in_flight_then_refuses(self, tmp_path):
        with make_server(tmp_path) as server:
            client = ServeClient(server.url, timeout=30.0)
            first = client.submit(DESIGN, options=FAST_OPTIONS)["job_id"]
            wait_for(lambda: client.get(first)["state"] != "queued")
            second = client.submit(DESIGN, options=FAST_OPTIONS)["job_id"]
            summary = client.drain(timeout=120.0)
            assert summary["draining"] is True
            assert summary["drained"] is True
            assert summary["in_flight"] == 0
            # The claimed job ran to completion; the queued one was
            # never claimed — drain stops the pump, it does not flush
            # the queue.  It survives for the next engine.
            assert client.get(first)["state"] == "done"
            assert client.get(second)["state"] == "queued"
            # New submits bounce with the documented 503.
            refused = ServeClient(server.url, timeout=30.0, retries=0)
            with pytest.raises(ServeAPIError) as exc:
                refused.submit(DESIGN, options=FAST_OPTIONS)
            assert exc.value.status == 503
            assert "draining" in exc.value.message
            assert exc.value.retry_after is not None
            assert refused.ready() is False
            assert client.health()["draining"] is True

    def test_restart_clears_drain_flag(self, tmp_path):
        with make_server(tmp_path) as server:
            ServeClient(server.url, timeout=30.0).drain(timeout=30.0)
        assert JobStore(tmp_path / "serve").draining() is True
        # A fresh engine on the same root accepts and runs work again.
        with make_server(tmp_path) as server:
            client = ServeClient(server.url, timeout=30.0)
            assert client.health()["draining"] is False
            job_id = client.submit(DESIGN, options=FAST_OPTIONS)["job_id"]
            final = client.wait(job_id, timeout=120.0)
            assert final["state"] == "done"


class TestRestartUnderLoad:
    def test_deadline_hit_checkpoints_and_resumes(self, tmp_path):
        store = JobStore(tmp_path / "serve")
        with make_server(tmp_path) as server:
            client = ServeClient(server.url, timeout=30.0)
            job_id = client.submit(DESIGN, options=FAST_OPTIONS)["job_id"]
            wait_for(lambda: store.get(job_id)["state"] != "queued")
            # An immediate deadline: the drain cannot wait the job out.
            summary = server.drain(timeout=0.01)
            assert summary["draining"] is True
            record = store.get(job_id)
            if record["state"] == "running":
                assert summary["drained"] is False
                assert summary["in_flight"] >= 1
        # Close requeued any survivor with the attempt refunded; the
        # next engine picks it up and runs it to completion.
        assert store.get(job_id)["state"] in ("queued", "done")
        with make_server(tmp_path) as server:
            client = ServeClient(server.url, timeout=30.0)
            final = client.wait(job_id, timeout=120.0)
            assert final["state"] == "done"
        assert check_invariants(store.journal, expect_submitted=1) == []
