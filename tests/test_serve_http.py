"""HTTP API tests for the serve job server (stdlib client end to end).

Every request goes over a real socket through :class:`ServeClient` —
these tests pin the wire contract documented in ``docs/serving.md``:
status codes, error bodies, the 409-until-terminal result endpoint,
cancel semantics, and the offset-based trace tailing protocol.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.serve import JobServer, ServeAPIError, ServeClient, ServeSettings

SPEC = {"name": "httptest", "num_cells": 40, "seed": 21}
FAST_OPTIONS = {
    "route": False,
    "run_dp": False,
    "config": {"gp.max_outer_iterations": 3},
}


def make_server(tmp_path, **overrides) -> JobServer:
    base = dict(
        workers=1,
        poll_interval=0.02,
        heartbeat_interval=0.1,
        monitor_interval=0.1,
        stale_timeout=30.0,
    )
    base.update(overrides)
    return JobServer(tmp_path / "serve", settings=ServeSettings(**base))


@pytest.fixture
def live(tmp_path):
    """A server with one worker, plus a client bound to it."""
    with make_server(tmp_path) as server:
        yield server, ServeClient(server.url, timeout=30.0)


@pytest.fixture
def parked(tmp_path):
    """A zero-worker server: submitted jobs stay queued forever."""
    with make_server(tmp_path, workers=0) as server:
        yield server, ServeClient(server.url, timeout=30.0)


class TestHealthAndErrors:
    def test_health(self, parked):
        _, client = parked
        out = client.health()
        assert out["ok"] is True
        assert out["queue"] == {}
        assert out["supervisor"]["workers"] == []

    def test_unknown_route_404(self, parked):
        _, client = parked
        with pytest.raises(ServeAPIError) as exc:
            client._request("GET", "/nope")
        assert exc.value.status == 404

    def test_unknown_job_404(self, parked):
        _, client = parked
        with pytest.raises(ServeAPIError) as exc:
            client.get("job-doesnotexist")
        assert exc.value.status == 404
        assert "no job" in exc.value.message

    def test_submit_without_design_400(self, parked):
        _, client = parked
        with pytest.raises(ServeAPIError) as exc:
            client._request("POST", "/jobs", {"options": {}})
        assert exc.value.status == 400

    def test_submit_invalid_design_400(self, parked):
        _, client = parked
        with pytest.raises(ServeAPIError) as exc:
            client.submit({"spec": SPEC, "suite": "small"})
        assert exc.value.status == 400
        assert "exactly one" in exc.value.message

    def test_submit_unknown_option_400(self, parked):
        _, client = parked
        with pytest.raises(ServeAPIError) as exc:
            client.submit({"spec": SPEC}, options={"banana": 1})
        assert exc.value.status == 400


class TestQueuedLifecycle:
    def test_submit_returns_queued_record(self, parked):
        _, client = parked
        record = client.submit({"spec": SPEC}, priority=3)
        assert record["state"] == "queued"
        assert record["priority"] == 3
        assert record["job_id"].startswith("httptest-")

    def test_result_is_409_until_terminal(self, parked):
        _, client = parked
        job_id = client.submit({"spec": SPEC})["job_id"]
        with pytest.raises(ServeAPIError) as exc:
            client.result(job_id)
        assert exc.value.status == 409
        assert "queued" in exc.value.message

    def test_cancel_queued(self, parked):
        _, client = parked
        job_id = client.submit({"spec": SPEC})["job_id"]
        assert client.cancel(job_id)["state"] == "cancelled"
        # Terminal now, so /result serves the record (with no result).
        final = client.result(job_id)
        assert final["state"] == "cancelled"
        assert final["result"] is None

    def test_list_filters_by_state(self, parked):
        _, client = parked
        client.submit({"spec": SPEC})
        cancelled = client.submit({"spec": SPEC})["job_id"]
        client.cancel(cancelled)
        queued = client.list(state="queued")
        assert [r["state"] for r in queued] == ["queued"]
        assert len(client.list()) == 2

    def test_get_by_prefix(self, parked):
        _, client = parked
        job_id = client.submit({"spec": SPEC})["job_id"]
        assert client.get(job_id[:16])["job_id"] == job_id


class TestRunToCompletion:
    def test_submit_wait_result_trace(self, live):
        _, client = live
        record = client.submit({"spec": SPEC}, options=FAST_OPTIONS)
        final = client.wait(record["job_id"], timeout=120)
        assert final["state"] == "done"
        assert final["result"]["hpwl_final"] > 0
        assert "legal" in final["result"]
        # /result now serves the same record.
        assert client.result(record["job_id"])["result"] == final["result"]

        # The trace endpoint replays the whole attempt: offset advances,
        # lines parse as JSONL, and the flow span is in there.
        out = client.tail_trace(record["job_id"])
        assert out["offset"] > 0
        records = [json.loads(line) for line in out["lines"]]
        assert any(
            r.get("type") == "span" and r.get("path") == "flow"
            for r in records
        )
        # Tailing from the end returns nothing new.
        again = client.tail_trace(record["job_id"], offset=out["offset"])
        assert again["lines"] == []
        assert again["offset"] == out["offset"]

    def test_stream_yields_trace_lines(self, live):
        _, client = live
        record = client.submit({"spec": SPEC}, options=FAST_OPTIONS)
        lines = list(client.stream(record["job_id"], timeout=120))
        paths = {json.loads(line).get("path") for line in lines}
        assert "flow" in paths

    def test_trace_offset_past_end_resets(self, live):
        _, client = live
        record = client.submit({"spec": SPEC}, options=FAST_OPTIONS)
        client.wait(record["job_id"], timeout=120)
        size = client.tail_trace(record["job_id"])["offset"]
        # A stale (too-large) offset means the attempt restarted with a
        # fresh, smaller file; the server starts over from byte 0.
        out = client.tail_trace(record["job_id"], offset=size + 4096)
        assert out["offset"] == size
        assert out["lines"]

    def test_wait_all_and_health_counts(self, live):
        server, client = live
        ids = [
            client.submit({"spec": dict(SPEC, seed=100 + i)},
                          options=FAST_OPTIONS)["job_id"]
            for i in range(3)
        ]
        finals = client.wait_all(ids, timeout=180, poll=0.1)
        assert {r["state"] for r in finals.values()} == {"done"}
        assert client.health()["queue"] == {"done": 3}
        assert server.store.idle()


class TestPagination:
    def test_list_all_pages_past_limit_clamp(self, parked, monkeypatch):
        _, client = parked
        ids = {client.submit({"spec": SPEC})["job_id"] for _ in range(5)}
        # Shrink the page size so five jobs take three round trips —
        # the same path a big queue takes past MAX_LIST_LIMIT.
        monkeypatch.setattr("repro.serve.client.LIST_PAGE", 2)
        records = client.list_all()
        assert {r["job_id"] for r in records} == ids

    def test_wait_all_sees_jobs_beyond_one_page(self, parked, monkeypatch):
        server, client = parked
        ids = [client.submit({"spec": SPEC})["job_id"] for _ in range(5)]
        for job_id in ids:
            client.cancel(job_id)
        monkeypatch.setattr("repro.serve.client.LIST_PAGE", 2)
        finals = client.wait_all(ids, timeout=30, poll=0.05)
        assert {r["state"] for r in finals.values()} == {"cancelled"}


class TestTraceAttemptRollover:
    def _write_trace(self, path, lines):
        with open(path, "w", encoding="utf-8") as fh:
            for line in lines:
                fh.write(json.dumps({"msg": line}) + "\n")

    def test_stale_offset_replays_fresh_attempt(self, parked):
        server, client = parked
        job_id = client.submit({"spec": SPEC})["job_id"]
        store = server.store

        # Attempt 1: claim and attach a long trace, tail to its end.
        assert store.claim(os.getpid())["job_id"] == job_id
        first_trace = os.path.join(server.root, "attempt1.trace")
        self._write_trace(first_trace, [f"a{i}" for i in range(20)])
        assert store.set_paths(job_id, attempt=1, trace_path=first_trace)
        out = client.tail_trace(job_id, offset=0)
        assert len(out["lines"]) == 20
        stale_offset = out["offset"]

        # The worker dies; the supervisor requeues; attempt 2 starts a
        # fresh (shorter) trace file.
        store.requeue(job_id, "worker died", attempt=1)
        assert store.claim(os.getpid())["job_id"] == job_id
        second_trace = os.path.join(server.root, "attempt2.trace")
        self._write_trace(second_trace, ["b0", "b1", "b2"])
        assert store.set_paths(job_id, attempt=2, trace_path=second_trace)

        # A tailer still holding the attempt-1 offset must not hang or
        # skip: the server detects offset > size and replays attempt 2
        # from byte 0.
        rolled = client.tail_trace(job_id, offset=stale_offset)
        assert [json.loads(line)["msg"] for line in rolled["lines"]] == [
            "b0", "b1", "b2",
        ]
        assert rolled["offset"] == os.path.getsize(second_trace)
        # The returned offset is live again: nothing new -> no lines.
        again = client.tail_trace(job_id, offset=rolled["offset"])
        assert again["lines"] == []
