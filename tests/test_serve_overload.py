"""Overload and admission-control tests for the serve stack.

Pins the contract documented in ``docs/serving.md``: per-client token
buckets (429 + ``Retry-After`` on quota breach), the bounded queue
(503 when full), the ``/healthz`` liveness vs ``/readyz`` readiness
split, and the client's retry discipline — transient failures (429,
5xx, connection resets) are retried with capped jittered backoff,
honouring ``Retry-After``, while non-transient errors surface at once
with the server's actual error body (even when it is not JSON).
"""

from __future__ import annotations

import contextlib
import http.server
import threading

import pytest

from repro.resilience.faults import inject
from repro.serve import JobServer, ServeAPIError, ServeClient, ServeSettings
from repro.serve.ratelimit import RateLimiter, TokenBucket

SPEC = {"name": "loadtest", "num_cells": 40, "seed": 3}
FAST_OPTIONS = {
    "route": False,
    "run_dp": False,
    "config": {"gp.max_outer_iterations": 3},
}


def make_server(tmp_path, **overrides) -> JobServer:
    base = dict(
        workers=0,  # parked: submitted jobs stay queued forever
        poll_interval=0.02,
        heartbeat_interval=0.1,
        monitor_interval=0.1,
        stale_timeout=30.0,
    )
    base.update(overrides)
    return JobServer(tmp_path / "serve", settings=ServeSettings(**base))


def no_retry_client(server: JobServer, **kwargs) -> ServeClient:
    return ServeClient(server.url, timeout=30.0, retries=0, **kwargs)


@contextlib.contextmanager
def plain_text_server(status: int, body: str):
    """A raw HTTP server that answers every GET with a non-JSON body."""
    data = body.encode("utf-8")

    class Handler(http.server.BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 - http.server API
            self.send_response(status)
            self.send_header("Content-Type", "text/plain")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

        def log_message(self, fmt, *args):  # noqa: A003
            pass

    httpd = http.server.ThreadingHTTPServer(("127.0.0.1", 0), Handler)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{httpd.server_port}"
    finally:
        httpd.shutdown()
        httpd.server_close()


class TestTokenBucket:
    def test_burst_grants_then_waits(self):
        bucket = TokenBucket(rate=1.0, burst=2.0, now=0.0)
        assert bucket.try_take(now=0.0) == 0.0
        assert bucket.try_take(now=0.0) == 0.0
        wait = bucket.try_take(now=0.0)
        assert wait == pytest.approx(1.0)

    def test_refill_restores_tokens(self):
        bucket = TokenBucket(rate=2.0, burst=1.0, now=0.0)
        assert bucket.try_take(now=0.0) == 0.0
        wait = bucket.try_take(now=0.0)
        assert wait == pytest.approx(0.5)
        # After exactly the advertised wait a token exists again.
        assert bucket.try_take(now=wait) == 0.0

    def test_tokens_cap_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2.0, now=0.0)
        # A long idle period must not bank more than ``burst`` tokens.
        assert bucket.try_take(now=1000.0) == 0.0
        assert bucket.try_take(now=1000.0) == 0.0
        assert bucket.try_take(now=1000.0) > 0.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestRateLimiter:
    def test_disabled_when_rate_zero(self):
        limiter = RateLimiter(0.0)
        assert limiter.enabled is False
        for _ in range(100):
            assert limiter.check("anyone", now=0.0) == 0.0

    def test_per_client_isolation(self):
        limiter = RateLimiter(1.0, 1.0)
        assert limiter.check("a", now=0.0) == 0.0
        assert limiter.check("a", now=0.0) > 0.0
        # Client b has its own untouched bucket.
        assert limiter.check("b", now=0.0) == 0.0

    def test_retry_after_is_refill_time(self):
        limiter = RateLimiter(2.0, 1.0)
        assert limiter.check("a", now=0.0) == 0.0
        assert limiter.check("a", now=0.0) == pytest.approx(0.5)
        assert limiter.check("a", now=0.5) == 0.0

    def test_idle_buckets_pruned(self):
        limiter = RateLimiter(1.0, 1.0)
        for i in range(70):
            limiter.check(f"client-{i}", now=0.0)
        assert limiter.describe()["clients"] == 70
        # A check far past IDLE_SECONDS sweeps the stale buckets.
        limiter.check("fresh", now=RateLimiter.IDLE_SECONDS + 1.0)
        assert limiter.describe()["clients"] == 1

    def test_default_burst_tracks_rate(self):
        assert RateLimiter(10.0).burst == 20.0
        assert RateLimiter(0.2).burst == 1.0


class TestHealthEndpoints:
    def test_healthz_is_bare_liveness(self, tmp_path):
        with make_server(tmp_path) as server:
            out = no_retry_client(server).healthz()
        assert out == {"ok": True}

    def test_readyz_ready_when_idle(self, tmp_path):
        with make_server(tmp_path) as server:
            assert no_retry_client(server).ready() is True

    def test_readyz_unready_near_queue_watermark(self, tmp_path):
        with make_server(tmp_path, max_queue_depth=5) as server:
            client = no_retry_client(server)
            for _ in range(3):
                client.submit({"spec": SPEC}, options=FAST_OPTIONS)
            assert client.ready() is True
            client.submit({"spec": SPEC}, options=FAST_OPTIONS)  # 4 >= 80% of 5
            assert client.ready() is False
            with pytest.raises(ServeAPIError) as exc:
                client._request("GET", "/readyz")
            assert exc.value.status == 503
            assert exc.value.retry_after is not None

    def test_health_reports_admission_state(self, tmp_path):
        with make_server(tmp_path, rate_limit=5.0) as server:
            out = no_retry_client(server).health()
        assert out["draining"] is False
        assert out["read_only"] is None
        assert out["ratelimit"]["enabled"] is True
        assert out["ratelimit"]["rate"] == 5.0


class TestAdmissionControl:
    def test_quota_breach_gets_429_with_retry_after(self, tmp_path):
        with make_server(tmp_path, rate_limit=1.0, rate_burst=1.0) as server:
            client = no_retry_client(server, client_id="tenant-a")
            client.submit({"spec": SPEC}, options=FAST_OPTIONS)
            with pytest.raises(ServeAPIError) as exc:
                client.submit({"spec": SPEC}, options=FAST_OPTIONS)
            assert exc.value.status == 429
            assert exc.value.retry_after is not None
            assert exc.value.retry_after >= 1.0
            assert exc.value.transient is True
            # The quota is per client: another tenant is unaffected.
            other = no_retry_client(server, client_id="tenant-b")
            assert "job_id" in other.submit({"spec": SPEC}, options=FAST_OPTIONS)

    def test_client_retries_429_to_success(self, tmp_path):
        with make_server(tmp_path, rate_limit=2.0, rate_burst=1.0) as server:
            client = ServeClient(
                server.url, timeout=30.0, retries=4, backoff=0.05,
                client_id="busy",
            )
            first = client.submit({"spec": SPEC}, options=FAST_OPTIONS)
            # Bucket empty now; the client waits out Retry-After and
            # lands the second submit without surfacing the 429.
            second = client.submit({"spec": SPEC}, options=FAST_OPTIONS)
            assert first["job_id"] != second["job_id"]

    def test_full_queue_gets_503_with_retry_after(self, tmp_path):
        with make_server(tmp_path, max_queue_depth=2) as server:
            client = no_retry_client(server)
            for _ in range(2):
                client.submit({"spec": SPEC}, options=FAST_OPTIONS)
            with pytest.raises(ServeAPIError) as exc:
                client.submit({"spec": SPEC}, options=FAST_OPTIONS)
            assert exc.value.status == 503
            assert "queue is full" in exc.value.message
            assert exc.value.retry_after is not None

    def test_terminal_jobs_free_queue_slots(self, tmp_path):
        with make_server(tmp_path, max_queue_depth=2) as server:
            client = no_retry_client(server)
            first = client.submit({"spec": SPEC}, options=FAST_OPTIONS)
            client.submit({"spec": SPEC}, options=FAST_OPTIONS)
            with pytest.raises(ServeAPIError):
                client.submit({"spec": SPEC}, options=FAST_OPTIONS)
            # Cancelling a queued job is immediate, so capacity returns.
            assert client.cancel(first["job_id"])["state"] == "cancelled"
            assert "job_id" in client.submit({"spec": SPEC}, options=FAST_OPTIONS)


class TestClientResilience:
    def test_retries_injected_500(self, tmp_path):
        with make_server(tmp_path) as server:
            client = ServeClient(
                server.url, timeout=30.0, retries=3, backoff=0.01
            )
            with inject("serve.http_500@1"):
                assert client.healthz() == {"ok": True}

    def test_500_surfaces_without_retry_budget(self, tmp_path):
        with make_server(tmp_path) as server:
            client = no_retry_client(server)
            with inject("serve.http_500@1"):
                with pytest.raises(ServeAPIError) as exc:
                    client.healthz()
            assert exc.value.status == 500
            assert exc.value.transient is True
            assert exc.value.retry_after == 1.0

    def test_retries_injected_connection_reset(self, tmp_path):
        with make_server(tmp_path) as server:
            client = ServeClient(
                server.url, timeout=30.0, retries=3, backoff=0.01
            )
            with inject("serve.client_conn_reset@1"):
                assert client.healthz() == {"ok": True}

    def test_connection_failure_is_status_zero(self, tmp_path):
        with make_server(tmp_path) as server:
            client = no_retry_client(server)
            with inject("serve.client_conn_reset@1"):
                with pytest.raises(ServeAPIError) as exc:
                    client.healthz()
            assert exc.value.status == 0
            assert exc.value.transient is True

    def test_non_json_error_body_not_swallowed(self):
        with plain_text_server(500, "upstream proxy exploded\nstack here") \
                as url:
            client = ServeClient(url, timeout=10.0, retries=0)
            with pytest.raises(ServeAPIError) as exc:
                client.healthz()
        assert exc.value.status == 500
        # The raw body survives both as the message snippet and verbatim.
        assert "upstream proxy exploded" in exc.value.message
        assert "stack here" in exc.value.body

    def test_non_json_404_keeps_body(self):
        with plain_text_server(404, "<html>not found</html>") as url:
            client = ServeClient(url, timeout=10.0, retries=0)
            with pytest.raises(ServeAPIError) as exc:
                client.healthz()
        assert exc.value.status == 404
        assert exc.value.transient is False
        assert "not found" in exc.value.body
