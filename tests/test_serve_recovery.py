"""Store-recovery tests: the journal, corruption rebuild, disk-full.

The store's failure contract (``docs/serving.md``, operations section):
every committed mutation lands one JSONL journal line; a corrupted
database is quarantined and rebuilt from the journal with terminal
states intact; an out-of-space failure degrades the store to read-only
(mutations raise :class:`JobStoreReadOnly`, the server answers 503)
and self-heals through a real probe write once space returns; any
other write failure is a retryable :class:`JobStoreWriteError` that
leaves the database untouched.  ``check_invariants`` — the chaos
harness's gate — is unit-tested here against hand-built journals for
each violation class it must catch.
"""

from __future__ import annotations

import errno
import glob
import os
import sqlite3

import pytest

from repro.resilience.faults import inject
from repro.serve import (
    JobStore,
    JobStoreReadOnly,
    JobStoreWriteError,
)
from repro.serve.journal import (
    JobJournal,
    check_invariants,
    entry_for,
    is_disk_full,
)

SPEC = {"name": "rectest", "num_cells": 40, "seed": 13}
DESIGN = {"spec": SPEC}


def record_for(job_id: str, state: str, attempts: int = 0) -> dict:
    """A minimal job record, enough for entry_for/check_invariants."""
    return {
        "job_id": job_id,
        "created": 1000.0,
        "priority": 0,
        "state": state,
        "attempts": attempts,
    }


class TestJournal:
    def test_append_entries_roundtrip(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.append(entry_for(
            "submit", record_for("j1", "queued"), seq=1, now=1.0))
        journal.append(entry_for(
            "claim", record_for("j1", "running", 1), seq=2, now=2.0))
        entries = journal.entries()
        assert [e["op"] for e in entries] == ["submit", "claim"]
        assert [e["seq"] for e in entries] == [1, 2]
        assert entries[1]["record"]["state"] == "running"

    def test_torn_final_line_skipped(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.append(entry_for(
            "submit", record_for("j1", "queued"), seq=1, now=1.0))
        with open(journal.path, "a", encoding="utf-8") as fh:
            fh.write('{"t": 2.0, "op": "claim", "job": "j1", "se')
        assert [e["op"] for e in journal.entries()] == ["submit"]

    def test_latest_picks_highest_seq(self, tmp_path):
        journal = JobJournal(tmp_path)
        # Appends from concurrent writers can interleave out of seq
        # order in the file; ``latest`` must still pick seq 3.
        journal.append(entry_for(
            "submit", record_for("j1", "queued"), seq=1, now=1.0))
        journal.append(entry_for(
            "finish", record_for("j1", "done", 1), seq=3, now=3.0))
        journal.append(entry_for(
            "claim", record_for("j1", "running", 1), seq=2, now=2.0))
        latest = journal.latest()
        seq, record = latest["j1"]
        assert seq == 3
        assert record["state"] == "done"
        assert journal.replay()["j1"]["state"] == "done"

    def test_missing_journal_is_empty(self, tmp_path):
        journal = JobJournal(tmp_path / "nowhere")
        assert journal.entries() == []
        assert journal.latest() == {}


class TestInvariantChecker:
    def _journal(self, tmp_path, entries):
        journal = JobJournal(tmp_path)
        for entry in entries:
            journal.append(entry)
        return journal

    def test_clean_lifecycle_passes(self, tmp_path):
        journal = self._journal(tmp_path, [
            entry_for("submit", record_for("j1", "queued"), seq=1, now=1.0),
            entry_for("claim", record_for("j1", "running", 1), seq=2,
                      now=2.0),
            entry_for("finish", record_for("j1", "done", 1), seq=3, now=3.0),
        ])
        assert check_invariants(journal, expect_submitted=1) == []

    def test_double_terminal_flagged(self, tmp_path):
        journal = self._journal(tmp_path, [
            entry_for("submit", record_for("j1", "queued"), seq=1, now=1.0),
            entry_for("finish", record_for("j1", "done", 1), seq=2, now=2.0),
            entry_for("cancel", record_for("j1", "cancelled", 1), seq=3,
                      now=3.0),
        ])
        violations = check_invariants(journal)
        assert any("after a terminal state" in v for v in violations)
        assert any("terminal state 2 times" in v for v in violations)

    def test_attempt_regression_without_refund_flagged(self, tmp_path):
        journal = self._journal(tmp_path, [
            entry_for("submit", record_for("j1", "queued"), seq=1, now=1.0),
            entry_for("claim", record_for("j1", "running", 1), seq=2,
                      now=2.0),
            entry_for("requeue", record_for("j1", "queued", 0), seq=3,
                      now=3.0),
        ])
        violations = check_invariants(journal)
        assert any("regressed" in v for v in violations)

    def test_refund_requeue_is_legal(self, tmp_path):
        journal = self._journal(tmp_path, [
            entry_for("submit", record_for("j1", "queued"), seq=1, now=1.0),
            entry_for("claim", record_for("j1", "running", 1), seq=2,
                      now=2.0),
            entry_for("requeue", record_for("j1", "queued", 0), seq=3,
                      now=3.0, refund=True),
        ])
        assert check_invariants(journal) == []

    def test_attempt_jump_flagged(self, tmp_path):
        journal = self._journal(tmp_path, [
            entry_for("submit", record_for("j1", "queued"), seq=1, now=1.0),
            entry_for("claim", record_for("j1", "running", 2), seq=2,
                      now=2.0),
        ])
        violations = check_invariants(journal)
        assert any("jumped" in v for v in violations)

    def test_missing_submit_flagged(self, tmp_path):
        journal = self._journal(tmp_path, [
            entry_for("claim", record_for("j1", "running", 1), seq=1,
                      now=1.0),
        ])
        violations = check_invariants(journal)
        assert any("submit" in v for v in violations)

    def test_expect_submitted_requires_all_terminal(self, tmp_path):
        journal = self._journal(tmp_path, [
            entry_for("submit", record_for("j1", "queued"), seq=1, now=1.0),
        ])
        violations = check_invariants(journal, expect_submitted=2)
        assert any("expected 2 submitted" in v for v in violations)
        assert any("never reached a terminal state" in v
                   for v in violations)


class TestStoreJournaling:
    def test_mutations_journaled_heartbeats_not(self, tmp_path):
        store = JobStore(tmp_path / "serve")
        job_id = store.submit(DESIGN)["job_id"]
        store.claim(os.getpid())
        store.heartbeat(job_id, attempt=1, stage="gp")
        store.finish(job_id, {"hpwl": 1.0}, attempt=1)
        ops = [e["op"] for e in store.journal.entries()]
        assert ops == ["submit", "claim", "finish"]
        assert check_invariants(store.journal, expect_submitted=1) == []

    def test_live_store_matches_journal_replay(self, tmp_path):
        store = JobStore(tmp_path / "serve")
        done = store.submit(DESIGN)["job_id"]
        store.claim(os.getpid())
        store.finish(done, {"hpwl": 1.0}, attempt=1)
        queued = store.submit(DESIGN)["job_id"]
        replayed = store.journal.replay()
        assert replayed[done]["state"] == "done"
        assert replayed[queued]["state"] == "queued"


class TestCorruptionRecovery:
    def _corrupt(self, store: JobStore) -> None:
        # Checkpoint the WAL into the main file, then smash the file
        # header — the next ``PRAGMA quick_check`` cannot pass.
        with sqlite3.connect(store.db_path) as con:
            con.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        with open(store.db_path, "r+b") as fh:
            fh.seek(0)
            fh.write(b"\x00" * 512)

    def test_corrupt_open_quarantines_and_rebuilds(self, tmp_path):
        root = tmp_path / "serve"
        store = JobStore(root)
        done = store.submit(DESIGN)["job_id"]
        store.claim(os.getpid())
        store.finish(done, {"hpwl": 2.0}, attempt=1)
        queued = store.submit(DESIGN)["job_id"]
        self._corrupt(store)

        rebuilt = JobStore(root)
        assert rebuilt.recoveries == 1
        assert glob.glob(f"{rebuilt.db_path}.quarantine-*")
        # Terminal states survive exactly; the queued job is claimable.
        assert rebuilt.get(done)["state"] == "done"
        assert rebuilt.get(done)["result"] == {"hpwl": 2.0}
        assert rebuilt.get(queued)["state"] == "queued"
        assert rebuilt.claim(os.getpid())["job_id"] == queued

    def test_rebuilt_store_keeps_journal_consistent(self, tmp_path):
        root = tmp_path / "serve"
        store = JobStore(root)
        job_id = store.submit(DESIGN)["job_id"]
        self._corrupt(store)

        rebuilt = JobStore(root)
        # Seq counters resume past everything already journaled, so
        # post-rebuild mutations keep the per-job order auditable.
        rebuilt.claim(os.getpid())
        rebuilt.finish(job_id, {"hpwl": 3.0}, attempt=1)
        assert check_invariants(rebuilt.journal, expect_submitted=1) == []


class TestWriteFailures:
    def test_store_write_fault_is_retryable(self, tmp_path):
        store = JobStore(tmp_path / "serve")
        with inject("serve.store_write@1"):
            with pytest.raises(JobStoreWriteError):
                store.submit(DESIGN)
        # The failed write rolled back; the store is intact and usable.
        assert store.read_only is None
        assert store.submit(DESIGN)["job_id"]
        assert store.counts().get("queued") == 1

    def test_disk_full_degrades_then_self_heals(self, tmp_path):
        store = JobStore(tmp_path / "serve")
        with inject("serve.disk_full@1"):
            with pytest.raises(JobStoreReadOnly):
                store.submit(DESIGN)
            assert store.read_only is not None
            assert "disk full" in store.read_only
            assert store.writable() is False
            # The probe does a real control-row write (fault points are
            # not consulted), so it reports the actual disk state.
            assert store.writable(probe=True) is True
            # The next mutation self-heals through that probe.
            assert store.submit(DESIGN)["job_id"]
        assert store.read_only is None

    def test_is_disk_full_classifier(self):
        assert is_disk_full(OSError(errno.ENOSPC, "no space"))
        assert is_disk_full(
            sqlite3.OperationalError("database or disk is full"))
        assert not is_disk_full(ValueError("something else"))
        assert not is_disk_full(OSError(errno.EACCES, "denied"))
