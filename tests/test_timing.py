"""Tests for the timing substrate (graph, STA, weighting)."""

import numpy as np
import pytest

from repro.benchgen import BenchmarkSpec, make_benchmark
from repro.db import Design, Net, Node, Pin, PinDirection
from repro.geometry import Rect
from repro.timing import (
    TimingGraph,
    analyze,
    apply_timing_net_weights,
    criticality,
)


def chain_design(lengths=(10.0, 5.0)):
    """a --n0--> b --n1--> c with given net HPWLs (1-D placement)."""
    d = Design("chain", core=Rect(0, 0, 100, 100))
    xs = [0.0]
    for L in lengths:
        xs.append(xs[-1] + L)
    names = "abcdefgh"
    for k, x in enumerate(xs):
        node = d.add_node(Node(names[k], 1, 1))
        node.move_center_to(x, 50.0)
    for j in range(len(lengths)):
        d.add_net(
            Net(
                f"n{j}",
                pins=[
                    Pin(node=j, direction=PinDirection.OUTPUT),
                    Pin(node=j + 1, direction=PinDirection.INPUT),
                ],
            )
        )
    return d


class TestGraph:
    def test_chain_arcs(self):
        g = TimingGraph.build(chain_design())
        assert len(g.arcs) == 2
        assert g.primary_inputs == [0]
        assert g.primary_outputs == [2]
        assert g.dropped_arcs == 0

    def test_topological_order(self):
        g = TimingGraph.build(chain_design((1.0, 1.0, 1.0)))
        order = {n: i for i, n in enumerate(g.order)}
        for arc in g.arcs:
            assert order[arc.src] < order[arc.dst]

    def test_cycle_broken(self):
        d = Design("cyc", core=Rect(0, 0, 10, 10))
        for k in range(2):
            d.add_node(Node(f"c{k}", 1, 1, x=k * 2.0, y=1.0))
        d.add_net(Net("f", pins=[Pin(node=0, direction=PinDirection.OUTPUT),
                                 Pin(node=1, direction=PinDirection.INPUT)]))
        d.add_net(Net("b", pins=[Pin(node=1, direction=PinDirection.OUTPUT),
                                 Pin(node=0, direction=PinDirection.INPUT)]))
        g = TimingGraph.build(d)
        assert g.dropped_arcs == 1
        assert len(g.arcs) == 1

    def test_bidir_fallback_first_pin_drives(self):
        d = Design("bd", core=Rect(0, 0, 10, 10))
        d.add_node(Node("a", 1, 1))
        d.add_node(Node("b", 1, 1))
        d.add_net(Net("n", pins=[Pin(node=1), Pin(node=0)]))
        g = TimingGraph.build(d)
        assert g.arcs[0].src == 1

    def test_fanout_tree(self):
        d = Design("fan", core=Rect(0, 0, 10, 10))
        for k in range(4):
            d.add_node(Node(f"c{k}", 1, 1, x=float(k), y=1.0))
        d.add_net(
            Net(
                "n",
                pins=[Pin(node=0, direction=PinDirection.OUTPUT)]
                + [Pin(node=k, direction=PinDirection.INPUT) for k in (1, 2, 3)],
            )
        )
        g = TimingGraph.build(d)
        assert len(g.arcs) == 3
        assert all(a.src == 0 for a in g.arcs)


class TestSTA:
    def test_chain_arrival(self):
        d = chain_design((10.0, 5.0))
        rep = analyze(d, alpha=1.0, gate_delay=1.0)
        # arrival(c) = (1 + 10) + (1 + 5)
        assert rep.arrival[2] == pytest.approx(17.0)
        assert rep.wns == pytest.approx(0.0)  # default clock = longest path

    def test_required_and_slack(self):
        d = chain_design((10.0, 5.0))
        rep = analyze(d, clock_period=20.0)
        assert rep.wns == pytest.approx(3.0)
        assert rep.net_slack[0] == pytest.approx(3.0)
        assert rep.net_slack[1] == pytest.approx(3.0)

    def test_negative_slack(self):
        d = chain_design((10.0, 5.0))
        rep = analyze(d, clock_period=10.0)
        assert rep.wns == pytest.approx(-7.0)

    def test_critical_path_traced(self):
        d = chain_design((10.0, 5.0, 2.0))
        rep = analyze(d)
        assert rep.critical_path == [0, 1, 2, 3]

    def test_critical_nets_ordering(self):
        d = Design("y", core=Rect(0, 0, 100, 100))
        for k, x in enumerate((0.0, 30.0, 2.0)):
            node = d.add_node(Node(f"c{k}", 1, 1))
            node.move_center_to(x, 50)
        d.add_net(Net("long", pins=[Pin(node=0, direction=PinDirection.OUTPUT),
                                    Pin(node=1, direction=PinDirection.INPUT)]))
        d.add_net(Net("short", pins=[Pin(node=0, direction=PinDirection.OUTPUT),
                                     Pin(node=2, direction=PinDirection.INPUT)]))
        rep = analyze(d)
        crit = rep.critical_nets
        assert crit and crit[0] == d.net("long").index

    def test_placement_dependence(self):
        """Moving cells closer must reduce the longest path."""
        d = chain_design((10.0, 5.0))
        before = analyze(d).arrival.max()
        d.node("b").move_center_to(1.0, 50.0)
        d.node("c").move_center_to(2.0, 50.0)
        after = analyze(d).arrival.max()
        assert after < before

    def test_benchmark_designs_analyzable(self):
        d = make_benchmark(
            BenchmarkSpec(name="t", num_cells=150, num_macros=1, seed=13)
        )
        rep = analyze(d)
        assert np.isfinite(rep.arrival).all()
        assert rep.clock_period > 0


class TestWeighting:
    def test_criticality_range(self):
        d = chain_design((10.0, 5.0))
        rep = analyze(d, clock_period=20.0)
        c = criticality(rep)
        assert (0 <= c).all() and (c <= 1).all()

    def test_critical_net_gets_weight(self):
        d = Design("w", core=Rect(0, 0, 100, 100))
        for k, x in enumerate((0.0, 40.0, 1.0)):
            node = d.add_node(Node(f"c{k}", 1, 1))
            node.move_center_to(x, 50)
        d.add_net(Net("long", pins=[Pin(node=0, direction=PinDirection.OUTPUT),
                                    Pin(node=1, direction=PinDirection.INPUT)]))
        d.add_net(Net("short", pins=[Pin(node=0, direction=PinDirection.OUTPUT),
                                     Pin(node=2, direction=PinDirection.INPUT)]))
        touched = apply_timing_net_weights(d)
        assert touched >= 1
        assert d.net("long").weight > d.net("short").weight

    def test_max_weight_cap(self):
        d = chain_design((10.0, 1.0))
        for _ in range(8):
            apply_timing_net_weights(d, max_weight=3.0)
        assert max(net.weight for net in d.nets) <= 3.0 + 1e-9

    def test_invalidates_cache(self):
        # fork with unequal branches: the long branch is critical
        d = Design("inv", core=Rect(0, 0, 100, 100))
        for k, x in enumerate((0.0, 40.0, 1.0)):
            node = d.add_node(Node(f"c{k}", 1, 1))
            node.move_center_to(x, 50)
        d.add_net(Net("long", pins=[Pin(node=0, direction=PinDirection.OUTPUT),
                                    Pin(node=1, direction=PinDirection.INPUT)]))
        d.add_net(Net("short", pins=[Pin(node=0, direction=PinDirection.OUTPUT),
                                     Pin(node=2, direction=PinDirection.INPUT)]))
        a1 = d.pin_arrays()
        assert apply_timing_net_weights(d) > 0
        assert d.pin_arrays() is not a1

    def test_weighting_improves_critical_path_after_replace(self):
        """End-to-end: weight, re-place, critical path shortens."""
        from repro.gp import GlobalPlacer, GPConfig

        spec = BenchmarkSpec(name="tw", num_cells=250, num_macros=0,
                             num_fixed_macros=0, seed=17, utilization=0.5)
        cfg = GPConfig(clustering=False, routability=False,
                       optimize_orientations=False, max_outer_iterations=12)
        d1 = make_benchmark(spec)
        GlobalPlacer(cfg).place(d1)
        base = analyze(d1).clock_period

        d2 = make_benchmark(spec)
        GlobalPlacer(cfg).place(d2)
        apply_timing_net_weights(d2, strength=3.0)
        GlobalPlacer(cfg).place(d2)
        weighted = analyze(d2).clock_period
        # longest path should not get (much) worse; usually improves
        assert weighted <= base * 1.05