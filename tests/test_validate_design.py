"""Tests for repro.resilience.validate: rules, sanitize repairs, flow gate."""

import math

import pytest

from repro.benchgen import BenchmarkSpec, make_benchmark
from repro.db import Design, Net, Node, NodeKind, Pin, Region, Row
from repro.flow import FlowConfig, NTUplace4H
from repro.geometry import Rect
from repro.resilience import DesignValidationError, validate_design


def rowed_design(rows=8, sites=40, site_w=1.0):
    d = Design("v")
    for r in range(rows):
        d.add_row(
            Row(y=float(r), height=1.0, site_width=site_w, x_min=0.0,
                num_sites=sites)
        )
    return d


def add_net(d, *nodes, name=None):
    net = Net(name=name or f"n{d.num_nets}")
    for n in nodes:
        net.pins.append(Pin(node=n.index, dx=0.0, dy=0.0))
    return d.add_net(net)


class TestRules:
    def test_clean_design(self):
        d = rowed_design()
        a = d.add_node(Node("a", 2, 1, x=1, y=1))
        b = d.add_node(Node("b", 2, 1, x=5, y=3))
        add_net(d, a, b)
        report = validate_design(d)
        assert report.ok and report.clean
        assert report.summary() == "design is clean"

    def test_no_core_is_fatal(self):
        d = Design("bare")
        d.add_node(Node("a", 1, 1))
        report = validate_design(d)
        assert not report.ok
        assert report.fatal[0].code == "design.no_core"

    def test_zero_area_cell_repaired(self):
        d = rowed_design()
        d.add_node(Node("z", 0.0, 1.0, x=1, y=1))
        report = validate_design(d)
        assert report.ok  # warning only
        assert report.issues[0].code == "node.zero_area"
        report = validate_design(d, sanitize=True)
        assert report.issues[0].fixed
        assert d.node("z").width >= d.site_width

    def test_negative_size_is_fatal(self):
        d = rowed_design()
        d.add_node(Node("neg", -2.0, 1.0))
        report = validate_design(d, sanitize=True)
        assert not report.ok
        assert report.fatal[0].code == "node.negative_size"

    def test_nonfinite_position_repaired(self):
        d = rowed_design()
        d.add_node(Node("lost", 2.0, 1.0, x=float("nan"), y=3.0))
        assert not validate_design(d).ok
        report = validate_design(d, sanitize=True)
        assert report.ok
        node = d.node("lost")
        assert math.isfinite(node.x) and math.isfinite(node.y)

    def test_nonfinite_size_stays_fatal(self):
        d = rowed_design()
        d.add_node(Node("bad", float("inf"), 1.0))
        assert not validate_design(d, sanitize=True).ok

    def test_movable_larger_than_core_is_fatal(self):
        d = rowed_design(rows=4, sites=10)
        d.add_node(Node("huge", 100.0, 100.0, kind=NodeKind.MACRO))
        report = validate_design(d)
        assert not report.ok
        assert report.fatal[0].code == "node.larger_than_core"

    def test_off_chip_terminal_clamped(self):
        d = rowed_design()
        d.add_node(Node("t", 2, 1, x=-500.0, y=-500.0, kind=NodeKind.FIXED))
        report = validate_design(d)
        assert report.ok
        assert report.issues[0].code == "terminal.off_chip"
        validate_design(d, sanitize=True)
        node = d.node("t")
        core = d.core
        assert node.x >= core.xl and node.y >= core.yl

    def test_empty_net_removed(self):
        d = rowed_design()
        a = d.add_node(Node("a", 2, 1, x=1, y=1))
        b = d.add_node(Node("b", 2, 1, x=5, y=3))
        add_net(d, a, b)
        d.add_net(Net(name="hollow"))
        report = validate_design(d, sanitize=True)
        assert report.ok
        assert d.num_nets == 1
        assert d.nets[0].index == 0  # survivors reindexed

    def test_single_pin_net_is_info_only(self):
        d = rowed_design()
        a = d.add_node(Node("a", 2, 1, x=1, y=1))
        add_net(d, a)
        report = validate_design(d)
        assert report.ok
        assert report.issues[0].code == "net.single_pin"
        assert not report.warnings  # info, not warning

    def test_pin_unknown_node_is_fatal(self):
        d = rowed_design()
        d.add_node(Node("a", 2, 1, x=1, y=1))
        net = Net(name="dangling")
        net.pins.append(Pin(node=0, dx=0.0, dy=0.0))
        d.add_net(net)
        net.pins.append(Pin(node=99, dx=0.0, dy=0.0))
        report = validate_design(d)
        assert not report.ok
        assert report.fatal[0].code == "pin.unknown_node"

    def test_pin_outside_node_clamped(self):
        d = rowed_design()
        a = d.add_node(Node("a", 2, 1, x=1, y=1))
        net = add_net(d, a)
        net.pins[0].dx = 50.0
        report = validate_design(d, sanitize=True)
        assert report.ok
        assert net.pins[0].dx == pytest.approx(1.0)  # half the width

    def test_fence_outside_core_clipped(self):
        d = rowed_design()
        region = d.add_region(Region("f", rects=[Rect(-10, -10, 4, 4)]))
        d.add_node(Node("a", 2, 1, x=1, y=1, region=region.index))
        report = validate_design(d, sanitize=True)
        assert report.ok
        assert all(d.core.contains_rect(r) for r in region.rects)

    def test_fence_unsatisfiable_is_fatal(self):
        d = rowed_design()
        region = d.add_region(Region("f", rects=[Rect(-20, -20, -10, -10)]))
        d.add_node(Node("a", 2, 1, x=1, y=1, region=region.index))
        report = validate_design(d)
        assert not report.ok
        assert any(i.code == "fence.unsatisfiable" for i in report.fatal)

    def test_fence_overlap_warned(self):
        d = rowed_design()
        d.add_region(Region("f1", rects=[Rect(0, 0, 5, 5)]))
        d.add_region(Region("f2", rects=[Rect(3, 3, 8, 8)]))
        report = validate_design(d)
        assert report.ok
        assert any(i.code == "fence.overlap" for i in report.warnings)


class TestFlowGate:
    def test_flow_refuses_fatal_design(self):
        d = rowed_design()
        d.add_node(Node("neg", -2.0, 1.0))
        with pytest.raises(DesignValidationError) as exc:
            NTUplace4H(FlowConfig()).run(d, route=False)
        assert exc.value.report.fatal

    def test_flow_sanitizes_and_records_report(self):
        spec = BenchmarkSpec(
            name="v", num_cells=120, num_macros=1, num_terminals=8,
            utilization=0.5, seed=5,
        )
        d = make_benchmark(spec)
        d.add_net(Net(name="hollow"))  # fixable: removed by sanitize
        nets_before = d.num_nets
        cfg = FlowConfig()
        cfg.gp.clustering = False
        cfg.gp.max_outer_iterations = 8
        cfg.gp.inner_iterations = 12
        cfg.run_dp = False
        result = NTUplace4H(cfg).run(d, route=False)
        assert result.validation is not None
        assert result.validation.ok and not result.validation.clean
        assert d.num_nets == nets_before - 1
        assert not result.degraded  # a repaired design is not a degraded run

    def test_validation_can_be_disabled(self):
        d = rowed_design()
        a = d.add_node(Node("a", 2, 1, x=1, y=1))
        b = d.add_node(Node("b", 2, 1, x=5, y=3))
        add_net(d, a, b)
        cfg = FlowConfig()
        cfg.validate_input = False
        cfg.gp.clustering = False
        cfg.gp.max_outer_iterations = 6
        cfg.gp.inner_iterations = 8
        cfg.run_dp = False
        result = NTUplace4H(cfg).run(d, route=False)
        assert result.validation is None
