"""Tests for the visualization helpers."""

import numpy as np
import pytest

from repro.benchgen import BenchmarkSpec, make_benchmark
from repro.viz import ascii_heatmap, ascii_histogram, heatmap_to_svg, placement_to_svg


class TestAsciiHeatmap:
    def test_renders_rows_top_down(self):
        grid = np.zeros((4, 3))
        grid[0, 2] = 1.0  # top-left in the die -> first output row
        out = ascii_heatmap(grid, legend=False)
        lines = out.splitlines()
        assert len(lines) == 3
        assert lines[0][0] != " "
        assert lines[2][0] == " "

    def test_scale_legend(self):
        out = ascii_heatmap(np.ones((2, 2)) * 3.0)
        assert "3" in out.splitlines()[-1]

    def test_vmax_override(self):
        grid = np.full((2, 2), 0.5)
        out_low = ascii_heatmap(grid, vmax=0.5, legend=False)
        out_high = ascii_heatmap(grid, vmax=5.0, legend=False)
        assert out_low != out_high

    def test_downsampling_wide_grids(self):
        grid = np.random.default_rng(0).uniform(size=(256, 4))
        out = ascii_heatmap(grid, width=64, legend=False)
        assert max(len(l) for l in out.splitlines()) <= 64

    def test_empty(self):
        assert "empty" in ascii_heatmap(np.zeros((0, 0)))

    def test_zero_grid(self):
        out = ascii_heatmap(np.zeros((3, 3)), legend=False)
        assert set("".join(out.splitlines())) == {" "}


class TestAsciiHistogram:
    def test_basic(self):
        out = ascii_histogram([1, 1, 2, 3, 3, 3], bins=3)
        assert out.count("|") == 3

    def test_empty(self):
        assert "no data" in ascii_histogram([])

    def test_label(self):
        assert ascii_histogram([1, 2], label="hello").startswith("hello")


class TestSvg:
    @pytest.fixture
    def design(self):
        return make_benchmark(
            BenchmarkSpec(name="v", num_cells=50, num_macros=1, num_fences=1,
                          fence_level=1, seed=4)
        )

    def test_placement_svg_wellformed(self, design, tmp_path):
        path = str(tmp_path / "p.svg")
        text = placement_to_svg(design, path)
        assert text.startswith("<svg")
        assert text.endswith("</svg>")
        assert text.count("<rect") > 50
        assert "stroke-dasharray" in text  # fence outline
        with open(path) as f:
            assert f.read() == text

    def test_placement_svg_no_fences(self, design):
        text = placement_to_svg(design, show_fences=False)
        assert "stroke-dasharray" not in text

    def test_heatmap_svg(self, tmp_path):
        grid = np.random.default_rng(1).uniform(size=(8, 8))
        path = str(tmp_path / "h.svg")
        text = heatmap_to_svg(grid, path)
        assert text.count("<rect") == 64
        import xml.etree.ElementTree as ET

        ET.fromstring(text)  # parses as XML

    def test_placement_svg_parses_as_xml(self, design):
        import xml.etree.ElementTree as ET

        ET.fromstring(placement_to_svg(design))
