"""Tests for HPWL and the smooth wirelength models.

The key paper claims pinned here:

* both LSE and WA converge to HPWL as gamma -> 0;
* LSE *over*-estimates HPWL, WA *under*-estimates it;
* at equal gamma, WA's absolute error is no larger than LSE's
  (the WA model's theoretical selling point);
* analytic gradients match finite differences to high precision.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Design, Net, Node, Pin
from repro.geometry import Rect
from repro.wirelength import (
    LogSumExp,
    WeightedAverage,
    finite_difference_gradient,
    hpwl,
    hpwl_per_net,
    make_model,
    net_bounding_boxes,
)


def build_design(positions, nets, weights=None):
    d = Design("t", core=Rect(0, 0, 100, 100))
    for k, (x, y) in enumerate(positions):
        node = d.add_node(Node(f"c{k}", 1.0, 1.0))
        node.move_center_to(x, y)
    for j, members in enumerate(nets):
        w = weights[j] if weights else 1.0
        d.add_net(Net(f"n{j}", pins=[Pin(node=m) for m in members], weight=w))
    return d


def random_design(rng, n_nodes=15, n_nets=8):
    positions = [(rng.uniform(5, 95), rng.uniform(5, 95)) for _ in range(n_nodes)]
    nets = []
    for _ in range(n_nets):
        k = int(rng.integers(2, 6))
        nets.append(list(rng.choice(n_nodes, size=k, replace=False)))
    return build_design(positions, nets)


class TestHPWL:
    def test_two_pin(self):
        d = build_design([(0, 0), (3, 4)], [[0, 1]])
        assert d.hpwl() == pytest.approx(7.0)

    def test_weights(self):
        d = build_design([(0, 0), (3, 4)], [[0, 1]], weights=[2.5])
        assert d.hpwl() == pytest.approx(17.5)

    def test_multi_pin_is_bbox(self):
        d = build_design([(0, 0), (10, 2), (5, 8)], [[0, 1, 2]])
        assert d.hpwl() == pytest.approx(10 + 8)

    def test_single_pin_net_zero(self):
        d = build_design([(4, 4), (9, 9)], [[0]])
        assert d.hpwl() == 0.0

    def test_per_net(self):
        d = build_design([(0, 0), (1, 1), (4, 4)], [[0, 1], [1, 2]])
        arrays = d.pin_arrays()
        cx, cy = d.pull_centers()
        per = hpwl_per_net(arrays, cx, cy)
        assert per.tolist() == pytest.approx([2.0, 6.0])

    def test_bounding_boxes(self):
        d = build_design([(1, 2), (5, 9)], [[0, 1]])
        arrays = d.pin_arrays()
        cx, cy = d.pull_centers()
        xl, yl, xh, yh = net_bounding_boxes(arrays, cx, cy)
        assert (xl[0], yl[0], xh[0], yh[0]) == pytest.approx((1, 2, 5, 9))

    def test_pin_offsets_respected(self):
        d = Design("t", core=Rect(0, 0, 10, 10))
        a = d.add_node(Node("a", 2, 2, x=0, y=0))
        b = d.add_node(Node("b", 2, 2, x=6, y=6))
        d.add_net(Net("n", pins=[Pin(node=0, dx=1.0), Pin(node=1, dx=-1.0)]))
        # centres at (1,1), (7,7); pins at (2,1), (6,7)
        assert d.hpwl() == pytest.approx(4 + 6)


class TestModelBounds:
    @pytest.mark.parametrize("gamma", [0.5, 2.0, 8.0])
    def test_lse_upper_bounds_hpwl(self, gamma):
        rng = np.random.default_rng(1)
        d = random_design(rng)
        arrays = d.pin_arrays()
        cx, cy = d.pull_centers()
        model = LogSumExp(arrays, d.num_nodes, gamma)
        assert model.value(cx, cy) >= hpwl(arrays, cx, cy) - 1e-9

    @pytest.mark.parametrize("gamma", [0.5, 2.0, 8.0])
    def test_wa_lower_bounds_hpwl(self, gamma):
        rng = np.random.default_rng(2)
        d = random_design(rng)
        arrays = d.pin_arrays()
        cx, cy = d.pull_centers()
        model = WeightedAverage(arrays, d.num_nodes, gamma)
        assert model.value(cx, cy) <= hpwl(arrays, cx, cy) + 1e-9

    @pytest.mark.parametrize("gamma", [0.5, 1.0, 3.0])
    def test_wa_worst_case_error_tighter_than_lse(self, gamma):
        """The WA theorem: the worst-case (over placements) absolute
        error of WA is strictly below LSE's at equal gamma.  For a 2-pin
        net the suprema are gamma/e (WA) vs gamma*ln2 (LSE); we verify
        empirically by sweeping the pin separation."""
        wa_max, lse_max = 0.0, 0.0
        for dist in np.linspace(0.0, 20.0 * gamma, 200):
            d = build_design([(0, 0), (dist, 0)], [[0, 1]])
            arrays = d.pin_arrays()
            cx, cy = d.pull_centers()
            exact = hpwl(arrays, cx, cy)
            wa = WeightedAverage(arrays, d.num_nodes, gamma).value(cx, cy)
            lse = LogSumExp(arrays, d.num_nodes, gamma).value(cx, cy)
            wa_max = max(wa_max, abs(wa - exact))
            lse_max = max(lse_max, abs(lse - exact))
        assert wa_max < lse_max
        # Known suprema for a 2-pin net, counting both axes (the y pins
        # coincide, which is exactly where LSE errs most): LSE peaks at
        # 2 * gamma*ln2 per axis, WA's peak is below gamma/e per axis.
        assert wa_max <= 2 * gamma / np.e + 1e-6
        assert lse_max <= 4 * gamma * np.log(2) + 1e-6

    def test_wa_beats_lse_in_clumped_regime(self):
        """Where it matters for optimization — early GP, pins within
        ~gamma of each other — WA tracks HPWL more closely than LSE."""
        wa_err, lse_err = [], []
        gamma = 4.0
        for seed in range(10):
            rng = np.random.default_rng(200 + seed)
            pts = [(50 + rng.uniform(-3, 3), 50 + rng.uniform(-3, 3)) for _ in range(6)]
            d = build_design(pts, [list(range(6))])
            arrays = d.pin_arrays()
            cx, cy = d.pull_centers()
            exact = hpwl(arrays, cx, cy)
            wa_err.append(abs(WeightedAverage(arrays, d.num_nodes, gamma).value(cx, cy) - exact))
            lse_err.append(abs(LogSumExp(arrays, d.num_nodes, gamma).value(cx, cy) - exact))
        assert np.mean(wa_err) < np.mean(lse_err)

    @pytest.mark.parametrize("kind", ["wa", "lse"])
    def test_converges_to_hpwl(self, kind):
        rng = np.random.default_rng(6)
        d = random_design(rng)
        arrays = d.pin_arrays()
        cx, cy = d.pull_centers()
        exact = hpwl(arrays, cx, cy)
        errors = [
            abs(make_model(kind, arrays, d.num_nodes, g).value(cx, cy) - exact)
            for g in (8.0, 2.0, 0.5, 0.1)
        ]
        assert errors[-1] < 0.01 * exact
        assert errors == sorted(errors, reverse=True)


class TestGradients:
    @pytest.mark.parametrize("kind", ["wa", "lse"])
    @pytest.mark.parametrize("gamma", [0.7, 3.0])
    def test_matches_finite_difference(self, kind, gamma):
        rng = np.random.default_rng(7)
        d = random_design(rng, n_nodes=10, n_nets=6)
        arrays = d.pin_arrays()
        cx, cy = d.pull_centers()
        model = make_model(kind, arrays, d.num_nodes, gamma)
        _, gx, gy = model.value_grad(cx, cy)
        fgx, fgy = finite_difference_gradient(model.value, cx, cy)
        assert np.abs(gx - fgx).max() < 1e-5
        assert np.abs(gy - fgy).max() < 1e-5

    @pytest.mark.parametrize("kind", ["wa", "lse"])
    def test_translation_invariant_gradient_sums_to_zero(self, kind):
        """Shifting all cells together leaves WL unchanged, so per-net
        gradient contributions must sum to ~0."""
        rng = np.random.default_rng(8)
        d = random_design(rng)
        arrays = d.pin_arrays()
        cx, cy = d.pull_centers()
        model = make_model(kind, arrays, d.num_nodes, 2.0)
        _, gx, gy = model.value_grad(cx, cy)
        assert abs(gx.sum()) < 1e-8
        assert abs(gy.sum()) < 1e-8

    @pytest.mark.parametrize("kind", ["wa", "lse"])
    def test_stability_huge_coordinates(self, kind):
        """Shifted exponentials must not overflow at real-die magnitudes."""
        d = build_design([(0, 0), (1e7, 1e7)], [[0, 1]])
        arrays = d.pin_arrays()
        cx, cy = d.pull_centers()
        model = make_model(kind, arrays, d.num_nodes, 1.0)
        v, gx, gy = model.value_grad(cx, cy)
        assert np.isfinite(v)
        assert np.isfinite(gx).all() and np.isfinite(gy).all()

    def test_single_pin_nets_ignored(self):
        d = build_design([(4, 4), (9, 9)], [[0], [0, 1]])
        arrays = d.pin_arrays()
        cx, cy = d.pull_centers()
        model = make_model("wa", arrays, d.num_nodes, 1.0)
        v, gx, gy = model.value_grad(cx, cy)
        assert v > 0  # from the 2-pin net only
        assert np.isfinite(gx).all()

    def test_empty_netlist(self):
        d = Design("t", core=Rect(0, 0, 10, 10))
        d.add_node(Node("a", 1, 1))
        arrays = d.pin_arrays()
        model = make_model("wa", arrays, 1, 1.0)
        cx, cy = d.pull_centers()
        v, gx, gy = model.value_grad(cx, cy)
        assert v == 0.0 and gx.tolist() == [0.0]

    def test_make_model_rejects_unknown(self):
        d = build_design([(0, 0), (1, 1)], [[0, 1]])
        with pytest.raises(ValueError):
            make_model("bozo", d.pin_arrays(), 2, 1.0)

    def test_gamma_positive_required(self):
        d = build_design([(0, 0), (1, 1)], [[0, 1]])
        with pytest.raises(ValueError):
            make_model("wa", d.pin_arrays(), 2, 0.0)


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.floats(0, 50, allow_nan=False), st.floats(0, 50, allow_nan=False)),
            min_size=3,
            max_size=8,
        )
    )
    def test_wa_between_zero_and_hpwl(self, pts):
        d = build_design(pts, [list(range(len(pts)))])
        arrays = d.pin_arrays()
        cx, cy = d.pull_centers()
        exact = hpwl(arrays, cx, cy)
        wa = WeightedAverage(arrays, d.num_nodes, 1.0).value(cx, cy)
        assert -1e-9 <= wa <= exact + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(st.floats(-40, 40, allow_nan=False), st.floats(-40, 40, allow_nan=False))
    def test_translation_invariance(self, dx, dy):
        d = build_design([(10, 10), (20, 30), (35, 15)], [[0, 1, 2]])
        arrays = d.pin_arrays()
        cx, cy = d.pull_centers()
        model = WeightedAverage(arrays, d.num_nodes, 2.0)
        v0 = model.value(cx, cy)
        v1 = model.value(cx + dx, cy + dy)
        assert v1 == pytest.approx(v0, abs=1e-6)
